//! 2D-mesh coordinate arithmetic (plain mesh, torus, concentrated mesh).

use noc_core::config::{SimConfig, Topology};
use noc_core::types::{Direction, NodeId, LINK_DIRECTIONS};
use serde::{Deserialize, Serialize};

/// (x, y) position on the mesh; x grows East, y grows South, origin at the
/// North-West corner. This matches the paper's compass convention: "x+" is
/// East, "y+" is South.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

/// A `width x height` 2D router grid with bidirectional links between
/// 4-neighbours. The [`Topology`] decides whether links wrap at the edges
/// (torus) and how many traffic terminals each router serves (cmesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
    topology: Topology,
}

impl Mesh {
    /// Create a plain 2D mesh; panics on degenerate dimensions (the
    /// smallest network with routing decisions is 2x2).
    pub fn new(width: u16, height: u16) -> Mesh {
        Mesh::with_topology(width, height, Topology::Mesh)
    }

    /// Create a 2D torus (wraparound links on both axes).
    pub fn torus(width: u16, height: u16) -> Mesh {
        Mesh::with_topology(width, height, Topology::Torus)
    }

    /// Create a concentrated mesh (4 terminals per router).
    pub fn cmesh(width: u16, height: u16) -> Mesh {
        Mesh::with_topology(width, height, Topology::CMesh)
    }

    /// Create a grid with an explicit topology.
    pub fn with_topology(width: u16, height: u16, topology: Topology) -> Mesh {
        assert!(width >= 2 && height >= 2, "mesh must be at least 2x2");
        assert!(
            (width as usize) * (height as usize) <= u16::MAX as usize,
            "too many nodes for NodeId"
        );
        Mesh {
            width,
            height,
            topology,
        }
    }

    /// The grid a [`SimConfig`] describes — the one constructor every
    /// engine/facade call site should use, so the config's topology axis
    /// reaches routing, verification and traffic generation.
    pub fn for_config(cfg: &SimConfig) -> Mesh {
        Mesh::with_topology(cfg.width, cfg.height, cfg.topology)
    }

    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Traffic terminals per router (4 on the cmesh, 1 otherwise).
    #[inline]
    pub fn concentration(&self) -> u16 {
        self.topology.concentration()
    }

    /// Shortest signed x-displacement from `a` to `b`: positive = East.
    /// On the torus the shorter ring direction wins; an exact half-ring
    /// tie breaks East (positive), deterministically.
    #[inline]
    pub fn dx(&self, a: Coord, b: Coord) -> i32 {
        Self::ring_delta(a.x, b.x, self.width, self.topology == Topology::Torus)
    }

    /// Shortest signed y-displacement from `a` to `b`: positive = South.
    /// Torus ties break South (positive).
    #[inline]
    pub fn dy(&self, a: Coord, b: Coord) -> i32 {
        Self::ring_delta(a.y, b.y, self.height, self.topology == Topology::Torus)
    }

    #[inline]
    fn ring_delta(from: u16, to: u16, len: u16, wrap: bool) -> i32 {
        let d = to as i32 - from as i32;
        if !wrap {
            return d;
        }
        let len = len as i32;
        // Normalize into (-len/2, len/2]: the shorter ring direction, with
        // the exact half-ring tie deterministically positive (East/South).
        let mut d = d.rem_euclid(len);
        if d > len / 2 {
            d -= len;
        }
        d
    }

    #[inline]
    pub fn width(&self) -> u16 {
        self.width
    }

    #[inline]
    pub fn height(&self) -> u16 {
        self.height
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Row-major node id for a coordinate.
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.width && c.y < self.height);
        NodeId(c.y * self.width + c.x)
    }

    /// Coordinate of a node id.
    ///
    /// Every routing decision decomposes node ids, so this is one of the
    /// hottest functions in the simulator; the power-of-two fast path
    /// replaces two hardware divisions with mask/shift for the common
    /// 4x4/8x8/16x16 meshes.
    #[inline]
    pub fn coord_of(&self, n: NodeId) -> Coord {
        debug_assert!((n.0 as usize) < self.num_nodes());
        let w = self.width;
        if w.is_power_of_two() {
            Coord {
                x: n.0 & (w - 1),
                y: n.0 >> w.trailing_zeros(),
            }
        } else {
            Coord {
                x: n.0 % w,
                y: n.0 / w,
            }
        }
    }

    /// Neighbour in a cardinal direction, or `None` at the mesh edge.
    /// On the torus every cardinal direction has a neighbour (wraparound).
    /// `Direction::Local` has no neighbour.
    pub fn neighbor(&self, n: NodeId, d: Direction) -> Option<NodeId> {
        let c = self.coord_of(n);
        let wrap = self.topology == Topology::Torus;
        let nc = match d {
            Direction::North if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            Direction::North if wrap => Coord {
                x: c.x,
                y: self.height - 1,
            },
            Direction::South if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            Direction::South if wrap => Coord { x: c.x, y: 0 },
            Direction::East if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            Direction::East if wrap => Coord { x: 0, y: c.y },
            Direction::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            Direction::West if wrap => Coord {
                x: self.width - 1,
                y: c.y,
            },
            _ => return None,
        };
        Some(self.node_at(nc))
    }

    /// Minimal hop distance (Manhattan; shortest-ring on the torus).
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        self.dx(ca, cb).unsigned_abs() + self.dy(ca, cb).unsigned_abs()
    }

    /// All directed links as `(from, direction, to)` triples, in node order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, Direction, NodeId)> + '_ {
        (0..self.num_nodes() as u16).flat_map(move |i| {
            let n = NodeId(i);
            LINK_DIRECTIONS
                .into_iter()
                .filter_map(move |d| self.neighbor(n, d).map(|to| (n, d, to)))
        })
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u16).map(NodeId)
    }

    /// Whether the node is on the mesh boundary (relevant for the fairness
    /// discussion: edge-injected flits age faster through the centre). The
    /// torus has no boundary.
    pub fn is_edge(&self, n: NodeId) -> bool {
        if self.topology == Topology::Torus {
            return false;
        }
        let c = self.coord_of(n);
        c.x == 0 || c.y == 0 || c.x + 1 == self.width || c.y + 1 == self.height
    }

    /// Directions whose link exists at this node.
    pub fn link_dirs(&self, n: NodeId) -> impl Iterator<Item = Direction> + '_ {
        LINK_DIRECTIONS
            .into_iter()
            .filter(move |&d| self.neighbor(n, d).is_some())
    }

    /// Terminal-grid width: `2 * width` on the cmesh (each router serves a
    /// 2x2 block of terminals), `width` otherwise.
    pub fn terminal_width(&self) -> u16 {
        match self.topology {
            Topology::CMesh => self.width * 2,
            _ => self.width,
        }
    }

    /// Terminal-grid height (`2 * height` on the cmesh).
    pub fn terminal_height(&self) -> u16 {
        match self.topology {
            Topology::CMesh => self.height * 2,
            _ => self.height,
        }
    }

    /// Total traffic terminals (`concentration() * num_nodes()`).
    pub fn num_terminals(&self) -> usize {
        self.num_nodes() * self.concentration() as usize
    }

    /// The router serving a terminal coordinate: on the cmesh terminal
    /// `(tx, ty)` folds onto router `(tx/2, ty/2)`; on other topologies
    /// terminals and routers coincide.
    pub fn router_of_terminal(&self, t: Coord) -> NodeId {
        debug_assert!(t.x < self.terminal_width() && t.y < self.terminal_height());
        match self.topology {
            Topology::CMesh => self.node_at(Coord {
                x: t.x / 2,
                y: t.y / 2,
            }),
            _ => self.node_at(t),
        }
    }

    /// Average minimal hop count over all (src != dst) pairs — the uniform
    /// random expected distance, useful for capacity sanity checks.
    pub fn average_distance(&self) -> f64 {
        let n = self.num_nodes();
        let mut total = 0u64;
        for a in self.nodes() {
            for b in self.nodes() {
                if a != b {
                    total += self.hop_distance(a, b) as u64;
                }
            }
        }
        total as f64 / (n as f64 * (n as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn coord_node_roundtrip() {
        let m = mesh8();
        for n in m.nodes() {
            assert_eq!(m.node_at(m.coord_of(n)), n);
        }
    }

    #[test]
    fn corner_neighbors() {
        let m = mesh8();
        let nw = m.node_at(Coord { x: 0, y: 0 });
        assert_eq!(m.neighbor(nw, Direction::North), None);
        assert_eq!(m.neighbor(nw, Direction::West), None);
        assert_eq!(m.neighbor(nw, Direction::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(nw, Direction::South), Some(NodeId(8)));
        assert_eq!(m.neighbor(nw, Direction::Local), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = mesh8();
        for (from, d, to) in m.links() {
            assert_eq!(m.neighbor(to, d.opposite()), Some(from));
        }
    }

    #[test]
    fn link_count_8x8() {
        // 2 * (w*(h-1) + h*(w-1)) directed links = 2*(56+56) = 224.
        assert_eq!(mesh8().links().count(), 224);
    }

    #[test]
    fn hop_distance_matches_manhattan() {
        let m = mesh8();
        let a = m.node_at(Coord { x: 1, y: 2 });
        let b = m.node_at(Coord { x: 6, y: 7 });
        assert_eq!(m.hop_distance(a, b), 10);
        assert_eq!(m.hop_distance(a, a), 0);
    }

    #[test]
    fn edges_detected() {
        let m = mesh8();
        assert!(m.is_edge(m.node_at(Coord { x: 0, y: 3 })));
        assert!(m.is_edge(m.node_at(Coord { x: 7, y: 7 })));
        assert!(!m.is_edge(m.node_at(Coord { x: 3, y: 4 })));
    }

    #[test]
    fn average_distance_8x8() {
        // Closed form for a k-ary 2-mesh over distinct pairs:
        // 2 * (k^2-1)/(3k) * N/(N-1) = 5.25 * 64/63 = 16/3 for k = 8.
        let avg = mesh8().average_distance();
        assert!((avg - 16.0 / 3.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn interior_node_has_four_links() {
        let m = mesh8();
        let mid = m.node_at(Coord { x: 4, y: 4 });
        assert_eq!(m.link_dirs(mid).count(), 4);
        let corner = m.node_at(Coord { x: 0, y: 0 });
        assert_eq!(m.link_dirs(corner).count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_mesh_rejected() {
        let _ = Mesh::new(1, 8);
    }

    #[test]
    fn torus_neighbors_wrap_and_stay_symmetric() {
        let t = Mesh::torus(8, 8);
        let nw = t.node_at(Coord { x: 0, y: 0 });
        assert_eq!(
            t.neighbor(nw, Direction::North),
            Some(t.node_at(Coord { x: 0, y: 7 }))
        );
        assert_eq!(
            t.neighbor(nw, Direction::West),
            Some(t.node_at(Coord { x: 7, y: 0 }))
        );
        assert_eq!(t.neighbor(nw, Direction::Local), None);
        for (from, d, to) in t.links() {
            assert_eq!(t.neighbor(to, d.opposite()), Some(from));
        }
        // Every node has all four links: 4 * 64 directed links.
        assert_eq!(t.links().count(), 256);
        for n in t.nodes() {
            assert_eq!(t.link_dirs(n).count(), 4);
            assert!(!t.is_edge(n));
        }
    }

    #[test]
    fn torus_hop_distance_takes_the_short_ring() {
        let t = Mesh::torus(8, 8);
        let a = t.node_at(Coord { x: 0, y: 0 });
        let b = t.node_at(Coord { x: 7, y: 7 });
        // One wrap hop per axis instead of 7 + 7.
        assert_eq!(t.hop_distance(a, b), 2);
        // Exact half-ring: still 4, and the delta tie-breaks positive.
        let c = t.node_at(Coord { x: 4, y: 0 });
        assert_eq!(t.hop_distance(a, c), 4);
        assert_eq!(t.dx(Coord { x: 0, y: 0 }, Coord { x: 4, y: 0 }), 4);
        assert_eq!(t.dx(Coord { x: 0, y: 0 }, Coord { x: 5, y: 0 }), -3);
        assert_eq!(t.dy(Coord { x: 0, y: 0 }, Coord { x: 0, y: 6 }), -2);
        // The plain mesh keeps raw deltas.
        let m = mesh8();
        assert_eq!(m.dx(Coord { x: 0, y: 0 }, Coord { x: 7, y: 0 }), 7);
        assert_eq!(m.hop_distance(a, b), 14);
    }

    #[test]
    fn torus_average_distance_is_below_mesh() {
        // Wraparound strictly shortens the average UR path: k/2 per axis
        // vs ~k/3 — 4.0 vs 16/3 on the 8x8 (over distinct pairs: *64/63).
        let t = Mesh::torus(8, 8);
        let expect = 4.0 * 64.0 / 63.0;
        assert!((t.average_distance() - expect).abs() < 1e-9);
        assert!(t.average_distance() < mesh8().average_distance());
    }

    #[test]
    fn cmesh_terminal_folding() {
        let c = Mesh::cmesh(4, 4);
        assert_eq!(c.concentration(), 4);
        assert_eq!(c.terminal_width(), 8);
        assert_eq!(c.terminal_height(), 8);
        assert_eq!(c.num_terminals(), 64);
        assert_eq!(c.num_nodes(), 16);
        // Terminal (5, 3) → router (2, 1).
        assert_eq!(
            c.router_of_terminal(Coord { x: 5, y: 3 }),
            c.node_at(Coord { x: 2, y: 1 })
        );
        // A 2x2 terminal block maps to one router.
        for (tx, ty) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            assert_eq!(
                c.router_of_terminal(Coord { x: tx, y: ty }),
                c.node_at(Coord { x: 0, y: 0 })
            );
        }
        // Router links are plain-mesh links (no wrap).
        assert_eq!(
            c.neighbor(c.node_at(Coord { x: 0, y: 0 }), Direction::West),
            None
        );
        // Non-concentrated topologies are identity maps.
        let m = mesh8();
        assert_eq!(m.num_terminals(), 64);
        assert_eq!(
            m.router_of_terminal(Coord { x: 5, y: 3 }),
            m.node_at(Coord { x: 5, y: 3 })
        );
    }

    #[test]
    fn for_config_carries_the_topology() {
        use noc_core::config::{SimConfig, Topology};
        let cfg = SimConfig {
            width: 4,
            height: 6,
            topology: Topology::Torus,
            ..SimConfig::default()
        };
        let m = Mesh::for_config(&cfg);
        assert_eq!(m.width(), 4);
        assert_eq!(m.height(), 6);
        assert_eq!(m.topology(), Topology::Torus);
        assert_eq!(Mesh::for_config(&SimConfig::default()), Mesh::new(8, 8));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_and_symmetry(w in 2u16..12, h in 2u16..12, xi in 0u16..12, yi in 0u16..12) {
            let m = Mesh::new(w, h);
            let c = Coord { x: xi % w, y: yi % h };
            let n = m.node_at(c);
            prop_assert_eq!(m.coord_of(n), c);
            for d in noc_core::types::LINK_DIRECTIONS {
                if let Some(nb) = m.neighbor(n, d) {
                    prop_assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                    prop_assert_eq!(m.hop_distance(n, nb), 1);
                }
            }
        }

        #[test]
        fn prop_triangle_inequality(w in 2u16..10, h in 2u16..10, seed in any::<u64>()) {
            let m = Mesh::new(w, h);
            let mut r = noc_core::Rng::seed_from(seed);
            let n = m.num_nodes() as u64;
            let a = NodeId(r.gen_range(n) as u16);
            let b = NodeId(r.gen_range(n) as u16);
            let c = NodeId(r.gen_range(n) as u16);
            prop_assert!(m.hop_distance(a, c) <= m.hop_distance(a, b) + m.hop_distance(b, c));
        }
    }
}

//! Chrome trace-event (`chrome://tracing` / Perfetto) export.
//!
//! The exporter emits the JSON object format: `{"traceEvents": [...]}`.
//! Each completed flit lifetime becomes a complete ("X") slice on the
//! track (`tid`) of its source node, spanning injection to completion;
//! router incidents (deflections, secondary-crossbar diversions, fairness
//! flips, drops) become instant ("i") events on the track of the router
//! where they happened. Timestamps are simulation cycles written into the
//! microsecond field, so 1 cycle renders as 1 µs.

use crate::event::TraceEvent;
use crate::lifetime::FlitLifetimes;
use serde::value::Value;
use serde::Serialize;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Build the trace-event tree from an event stream.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let mut lifetimes = FlitLifetimes::new();
    for ev in events {
        lifetimes.observe(ev);
    }

    let mut trace_events: Vec<Value> = Vec::new();
    for lt in lifetimes.completed() {
        let name = if lt.dropped {
            format!("pkt{}.{} (dropped)", lt.packet, lt.flit_index)
        } else {
            format!("pkt{}.{}", lt.packet, lt.flit_index)
        };
        trace_events.push(obj(vec![
            ("name", Value::Str(name)),
            ("cat", Value::Str("flit".to_string())),
            ("ph", Value::Str("X".to_string())),
            ("ts", Value::U64(lt.injected)),
            (
                "dur",
                Value::U64(lt.finished.saturating_sub(lt.injected).max(1)),
            ),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(lt.src as u64)),
            (
                "args",
                obj(vec![
                    ("packet", Value::U64(lt.packet)),
                    ("flit", Value::U64(lt.flit_index as u64)),
                    ("end_node", Value::U64(lt.end_node as u64)),
                    ("dropped", Value::Bool(lt.dropped)),
                    ("latency", Value::U64(lt.reported_latency)),
                ]),
            ),
        ]));
    }

    for ev in events {
        let name = match ev {
            TraceEvent::Deflect { .. } => "deflect",
            TraceEvent::DivertSecondary { .. } => "divert_secondary",
            TraceEvent::FairnessFlip { .. } => "fairness_flip",
            TraceEvent::Drop { .. } => "drop",
            _ => continue,
        };
        trace_events.push(obj(vec![
            ("name", Value::Str(name.to_string())),
            ("cat", Value::Str("router".to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("t".to_string())),
            ("ts", Value::U64(ev.cycle())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(ev.node().0 as u64)),
            ("args", ev.to_value()),
        ]));
    }

    obj(vec![
        ("traceEvents", Value::Array(trace_events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
        (
            "otherData",
            obj(vec![(
                "note",
                Value::Str("1 trace microsecond = 1 router cycle".to_string()),
            )]),
        ),
    ])
}

/// Render the trace-event JSON as a string ready for `chrome://tracing`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace(events).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{Direction, NodeId, PacketId};

    fn stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Inject {
                cycle: 10,
                node: NodeId(2),
                packet: PacketId(5),
                flit_index: 0,
            },
            TraceEvent::Deflect {
                cycle: 11,
                node: NodeId(3),
                packet: PacketId(5),
                flit_index: 0,
                wanted: Direction::East,
                got: Direction::North,
            },
            TraceEvent::Eject {
                cycle: 14,
                node: NodeId(6),
                packet: PacketId(5),
                flit_index: 0,
                latency: 4,
            },
        ]
    }

    #[test]
    fn emits_complete_and_instant_events() {
        let v = chrome_trace(&stream());
        let evs = v.field("traceEvents").as_array().unwrap();
        assert_eq!(evs.len(), 2); // one X slice + one instant
        let slice = &evs[0];
        assert_eq!(slice.field("ph").as_str(), Some("X"));
        assert_eq!(slice.field("ts").as_u64(), Some(10));
        assert_eq!(slice.field("dur").as_u64(), Some(4));
        assert_eq!(slice.field("tid").as_u64(), Some(2));
        let instant = &evs[1];
        assert_eq!(instant.field("ph").as_str(), Some("i"));
        assert_eq!(instant.field("name").as_str(), Some("deflect"));
        assert_eq!(instant.field("tid").as_u64(), Some(3));
    }

    #[test]
    fn output_parses_back_as_json_with_expected_shape() {
        let json = chrome_trace_json(&stream());
        let v = serde_json::parse(&json).unwrap();
        assert!(v.field("traceEvents").as_array().is_some());
        assert_eq!(v.field("displayTimeUnit").as_str(), Some("ms"));
    }

    #[test]
    fn zero_length_lifetime_gets_nonzero_duration() {
        let events = vec![
            TraceEvent::Inject {
                cycle: 3,
                node: NodeId(0),
                packet: PacketId(1),
                flit_index: 0,
            },
            TraceEvent::Eject {
                cycle: 3,
                node: NodeId(0),
                packet: PacketId(1),
                flit_index: 0,
                latency: 0,
            },
        ];
        let v = chrome_trace(&events);
        let evs = v.field("traceEvents").as_array().unwrap();
        assert_eq!(evs[0].field("dur").as_u64(), Some(1));
    }
}

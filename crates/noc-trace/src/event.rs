//! The flit-lifecycle event vocabulary.
//!
//! Every event carries the cycle it happened on and the router (node) it
//! happened at; flit-scoped events additionally carry the packet id and
//! flit index. JSONL encoding uses short keys to keep multi-million-event
//! traces small:
//!
//! | key     | meaning                                        |
//! |---------|------------------------------------------------|
//! | `k`     | event kind (snake_case tag)                    |
//! | `cy`    | cycle                                          |
//! | `node`  | router id                                      |
//! | `pkt`   | packet id                                      |
//! | `fi`    | flit index within the packet                   |
//! | `dir`   | link direction (Hop)                           |
//! | `occ`   | FIFO occupancy after insertion (BufferEnter)   |
//! | `wait`  | cycles spent buffered (BufferExit)             |
//! | `want`/`got` | requested vs granted port (Deflect)       |
//! | `epoch` | fairness epoch counter (FairnessFlip)          |
//! | `lat`   | packet latency in cycles (Eject)               |

use noc_core::{Cycle, Direction, NodeId, PacketId};
use serde::value::Value;
use serde::{Deserialize, Error, Serialize};

/// Discriminant-only view of [`TraceEvent`], for filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEventKind {
    Inject,
    Hop,
    BufferEnter,
    BufferExit,
    Deflect,
    DivertSecondary,
    FairnessFlip,
    Drop,
    Eject,
}

impl TraceEventKind {
    pub const ALL: [TraceEventKind; 9] = [
        TraceEventKind::Inject,
        TraceEventKind::Hop,
        TraceEventKind::BufferEnter,
        TraceEventKind::BufferExit,
        TraceEventKind::Deflect,
        TraceEventKind::DivertSecondary,
        TraceEventKind::FairnessFlip,
        TraceEventKind::Drop,
        TraceEventKind::Eject,
    ];

    /// The snake_case tag used in the JSONL `k` field.
    pub fn tag(self) -> &'static str {
        match self {
            TraceEventKind::Inject => "inject",
            TraceEventKind::Hop => "hop",
            TraceEventKind::BufferEnter => "buffer_enter",
            TraceEventKind::BufferExit => "buffer_exit",
            TraceEventKind::Deflect => "deflect",
            TraceEventKind::DivertSecondary => "divert_secondary",
            TraceEventKind::FairnessFlip => "fairness_flip",
            TraceEventKind::Drop => "drop",
            TraceEventKind::Eject => "eject",
        }
    }

    pub fn from_tag(tag: &str) -> Option<TraceEventKind> {
        TraceEventKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// One thing that happened to one flit (or one router, for
/// [`TraceEvent::FairnessFlip`]) on one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A head-of-queue flit left the source queue and entered the router.
    Inject {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
    },
    /// A flit won an output link and traversed it.
    Hop {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
        dir: Direction,
    },
    /// A flit was written into a router FIFO (unified buffer designs) —
    /// either on arrival or after losing primary-crossbar arbitration.
    BufferEnter {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
        /// FIFO occupancy right after insertion.
        occupancy: u32,
    },
    /// A buffered flit won arbitration and left the FIFO.
    BufferExit {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
        /// Cycles the flit sat in the FIFO.
        waited: u64,
    },
    /// A bufferless router granted a non-productive port.
    Deflect {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
        wanted: Direction,
        got: Direction,
    },
    /// A buffered flit was routed through the secondary (5x5) crossbar.
    DivertSecondary {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
    },
    /// The router's fairness counter crossed its threshold and flipped
    /// priority between incoming and buffered flits.
    FairnessFlip {
        cycle: Cycle,
        node: NodeId,
        /// How many flips this router has seen, including this one.
        epoch: u64,
    },
    /// A flit was dropped (buffer overflow / fault); the source will
    /// retransmit via NACK.
    Drop {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
    },
    /// A flit reached its destination and left through the local port.
    Eject {
        cycle: Cycle,
        node: NodeId,
        packet: PacketId,
        flit_index: u16,
        /// Cycles since the packet was created at the source.
        latency: u64,
    },
}

impl TraceEvent {
    pub fn kind(&self) -> TraceEventKind {
        match self {
            TraceEvent::Inject { .. } => TraceEventKind::Inject,
            TraceEvent::Hop { .. } => TraceEventKind::Hop,
            TraceEvent::BufferEnter { .. } => TraceEventKind::BufferEnter,
            TraceEvent::BufferExit { .. } => TraceEventKind::BufferExit,
            TraceEvent::Deflect { .. } => TraceEventKind::Deflect,
            TraceEvent::DivertSecondary { .. } => TraceEventKind::DivertSecondary,
            TraceEvent::FairnessFlip { .. } => TraceEventKind::FairnessFlip,
            TraceEvent::Drop { .. } => TraceEventKind::Drop,
            TraceEvent::Eject { .. } => TraceEventKind::Eject,
        }
    }

    pub fn cycle(&self) -> Cycle {
        match self {
            TraceEvent::Inject { cycle, .. }
            | TraceEvent::Hop { cycle, .. }
            | TraceEvent::BufferEnter { cycle, .. }
            | TraceEvent::BufferExit { cycle, .. }
            | TraceEvent::Deflect { cycle, .. }
            | TraceEvent::DivertSecondary { cycle, .. }
            | TraceEvent::FairnessFlip { cycle, .. }
            | TraceEvent::Drop { cycle, .. }
            | TraceEvent::Eject { cycle, .. } => *cycle,
        }
    }

    pub fn node(&self) -> NodeId {
        match self {
            TraceEvent::Inject { node, .. }
            | TraceEvent::Hop { node, .. }
            | TraceEvent::BufferEnter { node, .. }
            | TraceEvent::BufferExit { node, .. }
            | TraceEvent::Deflect { node, .. }
            | TraceEvent::DivertSecondary { node, .. }
            | TraceEvent::FairnessFlip { node, .. }
            | TraceEvent::Drop { node, .. }
            | TraceEvent::Eject { node, .. } => *node,
        }
    }

    /// The packet involved, if this is a flit-scoped event.
    pub fn packet(&self) -> Option<PacketId> {
        match self {
            TraceEvent::Inject { packet, .. }
            | TraceEvent::Hop { packet, .. }
            | TraceEvent::BufferEnter { packet, .. }
            | TraceEvent::BufferExit { packet, .. }
            | TraceEvent::Deflect { packet, .. }
            | TraceEvent::DivertSecondary { packet, .. }
            | TraceEvent::Drop { packet, .. }
            | TraceEvent::Eject { packet, .. } => Some(*packet),
            TraceEvent::FairnessFlip { .. } => None,
        }
    }

    /// The flit index within its packet, if this is a flit-scoped event.
    pub fn flit_index(&self) -> Option<u16> {
        match self {
            TraceEvent::Inject { flit_index, .. }
            | TraceEvent::Hop { flit_index, .. }
            | TraceEvent::BufferEnter { flit_index, .. }
            | TraceEvent::BufferExit { flit_index, .. }
            | TraceEvent::Deflect { flit_index, .. }
            | TraceEvent::DivertSecondary { flit_index, .. }
            | TraceEvent::Drop { flit_index, .. }
            | TraceEvent::Eject { flit_index, .. } => Some(*flit_index),
            TraceEvent::FairnessFlip { .. } => None,
        }
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// The derive macro only covers unit-variant enums, so the payload-carrying
// TraceEvent implements serde by hand, tagged via the `k` field.
impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let tag = Value::Str(self.kind().tag().to_string());
        match self {
            TraceEvent::Inject {
                cycle,
                node,
                packet,
                flit_index,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
            ]),
            TraceEvent::Hop {
                cycle,
                node,
                packet,
                flit_index,
                dir,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
                ("dir", dir.to_value()),
            ]),
            TraceEvent::BufferEnter {
                cycle,
                node,
                packet,
                flit_index,
                occupancy,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
                ("occ", occupancy.to_value()),
            ]),
            TraceEvent::BufferExit {
                cycle,
                node,
                packet,
                flit_index,
                waited,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
                ("wait", waited.to_value()),
            ]),
            TraceEvent::Deflect {
                cycle,
                node,
                packet,
                flit_index,
                wanted,
                got,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
                ("want", wanted.to_value()),
                ("got", got.to_value()),
            ]),
            TraceEvent::DivertSecondary {
                cycle,
                node,
                packet,
                flit_index,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
            ]),
            TraceEvent::FairnessFlip { cycle, node, epoch } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("epoch", epoch.to_value()),
            ]),
            TraceEvent::Drop {
                cycle,
                node,
                packet,
                flit_index,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
            ]),
            TraceEvent::Eject {
                cycle,
                node,
                packet,
                flit_index,
                latency,
            } => obj(vec![
                ("k", tag),
                ("cy", cycle.to_value()),
                ("node", node.to_value()),
                ("pkt", packet.to_value()),
                ("fi", flit_index.to_value()),
                ("lat", latency.to_value()),
            ]),
        }
    }
}

fn get<T: Deserialize>(v: &Value, key: &str) -> Result<T, Error> {
    T::from_value(v.field(key)).map_err(|e| Error::msg(format!("TraceEvent.{key}: {e}")))
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let tag: String = get(v, "k")?;
        let kind = TraceEventKind::from_tag(&tag)
            .ok_or_else(|| Error::msg(format!("unknown trace event kind {tag:?}")))?;
        let cycle: Cycle = get(v, "cy")?;
        let node: NodeId = get(v, "node")?;
        let ev = match kind {
            TraceEventKind::Inject => TraceEvent::Inject {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
            },
            TraceEventKind::Hop => TraceEvent::Hop {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
                dir: get(v, "dir")?,
            },
            TraceEventKind::BufferEnter => TraceEvent::BufferEnter {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
                occupancy: get(v, "occ")?,
            },
            TraceEventKind::BufferExit => TraceEvent::BufferExit {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
                waited: get(v, "wait")?,
            },
            TraceEventKind::Deflect => TraceEvent::Deflect {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
                wanted: get(v, "want")?,
                got: get(v, "got")?,
            },
            TraceEventKind::DivertSecondary => TraceEvent::DivertSecondary {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
            },
            TraceEventKind::FairnessFlip => TraceEvent::FairnessFlip {
                cycle,
                node,
                epoch: get(v, "epoch")?,
            },
            TraceEventKind::Drop => TraceEvent::Drop {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
            },
            TraceEventKind::Eject => TraceEvent::Eject {
                cycle,
                node,
                packet: get(v, "pkt")?,
                flit_index: get(v, "fi")?,
                latency: get(v, "lat")?,
            },
        };
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn one_of_each() -> Vec<TraceEvent> {
        let node = NodeId(3);
        let packet = PacketId(42);
        vec![
            TraceEvent::Inject {
                cycle: 1,
                node,
                packet,
                flit_index: 0,
            },
            TraceEvent::Hop {
                cycle: 2,
                node,
                packet,
                flit_index: 0,
                dir: Direction::East,
            },
            TraceEvent::BufferEnter {
                cycle: 3,
                node,
                packet,
                flit_index: 1,
                occupancy: 2,
            },
            TraceEvent::BufferExit {
                cycle: 9,
                node,
                packet,
                flit_index: 1,
                waited: 6,
            },
            TraceEvent::Deflect {
                cycle: 4,
                node,
                packet,
                flit_index: 0,
                wanted: Direction::East,
                got: Direction::North,
            },
            TraceEvent::DivertSecondary {
                cycle: 5,
                node,
                packet,
                flit_index: 1,
            },
            TraceEvent::FairnessFlip {
                cycle: 6,
                node,
                epoch: 2,
            },
            TraceEvent::Drop {
                cycle: 7,
                node,
                packet,
                flit_index: 2,
            },
            TraceEvent::Eject {
                cycle: 8,
                node,
                packet,
                flit_index: 0,
                latency: 7,
            },
        ]
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in TraceEventKind::ALL {
            assert_eq!(TraceEventKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(TraceEventKind::from_tag("bogus"), None);
    }

    #[test]
    fn every_variant_roundtrips_through_value() {
        for ev in one_of_each() {
            let v = ev.to_value();
            let back = TraceEvent::from_value(&v).unwrap();
            assert_eq!(back, ev);
            assert_eq!(v.field("k").as_str(), Some(ev.kind().tag()));
        }
    }

    #[test]
    fn accessors_agree_with_payload() {
        for ev in one_of_each() {
            assert_eq!(ev.node(), NodeId(3));
            match ev.kind() {
                TraceEventKind::FairnessFlip => {
                    assert_eq!(ev.packet(), None);
                    assert_eq!(ev.flit_index(), None);
                }
                _ => {
                    assert_eq!(ev.packet(), Some(PacketId(42)));
                    assert!(ev.flit_index().is_some());
                }
            }
        }
    }
}

//! JSONL (one JSON object per line) trace export and import.
//!
//! Events serialize in their original order with stable field ordering, so
//! two runs with the same seed produce byte-identical files.

use crate::event::TraceEvent;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// Render events as JSONL into any writer.
pub fn write_jsonl<'a, W, I>(w: &mut W, events: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a TraceEvent>,
{
    for ev in events {
        let line = ev.to_value().to_json();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Render events as a JSONL string.
pub fn to_jsonl<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut out = Vec::new();
    write_jsonl(&mut out, events).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("JSON output is UTF-8")
}

/// Parse a JSONL trace back into events. Blank lines are skipped; the
/// 1-based line number is included in parse errors.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, serde::Error> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = serde_json::parse(line)
            .map_err(|e| serde::Error::msg(format!("line {}: {e}", lineno + 1)))?;
        events.push(
            TraceEvent::from_value(&v)
                .map_err(|e| serde::Error::msg(format!("line {}: {e}", lineno + 1)))?,
        );
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{Direction, NodeId, PacketId};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Inject {
                cycle: 1,
                node: NodeId(0),
                packet: PacketId(1),
                flit_index: 0,
            },
            TraceEvent::Hop {
                cycle: 2,
                node: NodeId(0),
                packet: PacketId(1),
                flit_index: 0,
                dir: Direction::East,
            },
            TraceEvent::Eject {
                cycle: 3,
                node: NodeId(1),
                packet: PacketId(1),
                flit_index: 0,
                latency: 2,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_preserves_events_and_order() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_is_reproducible() {
        let events = sample_events();
        assert_eq!(to_jsonl(&events), to_jsonl(&events));
    }

    #[test]
    fn blank_lines_skipped_bad_lines_located() {
        let events = sample_events();
        let mut text = to_jsonl(&events);
        text.push('\n');
        assert_eq!(from_jsonl(&text).unwrap(), events);

        let bad = "{\"k\":\"inject\"}\n";
        let err = from_jsonl(bad).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}

//! Per-flit lifecycle tracing for the DXbar NoC simulator.
//!
//! This crate records what happens to every flit as it moves through the
//! network — injection, hops, buffer residency, deflections, secondary
//! crossbar diversions, fairness flips, drops, ejection — plus per-cycle
//! time-series samples of aggregate state. Recorders are ring-buffered so
//! long runs stay bounded; exporters write JSONL (one event per line) and
//! Chrome `chrome://tracing` / Perfetto trace-event JSON.
//!
//! The zero-cost default is [`NullSink`]: routers emit events through
//! [`TraceBuf`], which is disabled unless a recording sink is attached, so
//! the untraced hot path costs one branch per emission site.

pub mod chrome;
pub mod event;
pub mod jsonl;
pub mod lifetime;
pub mod recorder;
pub mod series;
pub mod sink;

pub use chrome::{chrome_trace, chrome_trace_json};
pub use event::{TraceEvent, TraceEventKind};
pub use jsonl::{from_jsonl, to_jsonl, write_jsonl};
pub use lifetime::{percentile_of_sorted, FlitLifetime, FlitLifetimes, LifetimeSummary};
pub use recorder::RingRecorder;
pub use series::{CycleSample, SampleSeries, SeriesSet};
pub use sink::{NullSink, RecordingSink, TraceBuf, TraceSink};

//! Per-flit lifetime reconstruction and **exact** latency percentiles.
//!
//! [`crate::sink::RecordingSink`] feeds every event through
//! [`FlitLifetimes::observe`], which pairs each `Inject` with the matching
//! `Eject` or `Drop`. Unlike `noc_core::LatencyStats` (a histogram with
//! bounded relative error), the percentiles here are computed from the
//! full sorted latency population — the reference the histogram's accuracy
//! is tested against.

use crate::event::TraceEvent;
use noc_core::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The reconstructed life of one flit, from injection to eject/drop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlitLifetime {
    pub packet: u64,
    pub flit_index: u16,
    /// Node that injected the flit.
    pub src: u16,
    /// Node where the flit finished (destination, or drop site).
    pub end_node: u16,
    pub injected: Cycle,
    pub finished: Cycle,
    pub dropped: bool,
    /// Source-to-destination packet latency reported at ejection (measured
    /// from packet creation, so it includes source queueing).
    pub reported_latency: u64,
}

impl FlitLifetime {
    /// Cycles between injection into the network and completion.
    pub fn network_latency(&self) -> u64 {
        self.finished.saturating_sub(self.injected)
    }
}

/// Pairs inject events with their terminal event and keeps the population
/// of completed lifetimes.
#[derive(Debug, Default)]
pub struct FlitLifetimes {
    /// Flits injected but not yet ejected/dropped: (src node, inject cycle).
    open: HashMap<(u64, u16), (u16, Cycle)>,
    /// Completed lifetimes, in completion order.
    done: Vec<FlitLifetime>,
    injected: u64,
    ejected: u64,
    dropped: u64,
}

impl FlitLifetimes {
    pub fn new() -> Self {
        FlitLifetimes::default()
    }

    pub fn observe(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Inject {
                cycle,
                node,
                packet,
                flit_index,
            } => {
                self.injected += 1;
                // A retransmitted flit reopens its key; the new attempt
                // supersedes the old one.
                self.open.insert((packet.0, *flit_index), (node.0, *cycle));
            }
            TraceEvent::Eject {
                cycle,
                node,
                packet,
                flit_index,
                latency,
            } => {
                self.ejected += 1;
                if let Some((src, injected)) = self.open.remove(&(packet.0, *flit_index)) {
                    self.done.push(FlitLifetime {
                        packet: packet.0,
                        flit_index: *flit_index,
                        src,
                        end_node: node.0,
                        injected,
                        finished: *cycle,
                        dropped: false,
                        reported_latency: *latency,
                    });
                }
            }
            TraceEvent::Drop {
                cycle,
                node,
                packet,
                flit_index,
            } => {
                self.dropped += 1;
                if let Some((src, injected)) = self.open.remove(&(packet.0, *flit_index)) {
                    self.done.push(FlitLifetime {
                        packet: packet.0,
                        flit_index: *flit_index,
                        src,
                        end_node: node.0,
                        injected,
                        finished: *cycle,
                        dropped: true,
                        reported_latency: 0,
                    });
                }
            }
            _ => {}
        }
    }

    pub fn injected(&self) -> u64 {
        self.injected
    }

    pub fn ejected(&self) -> u64 {
        self.ejected
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flits injected whose terminal event has not been seen yet.
    pub fn still_open(&self) -> usize {
        self.open.len()
    }

    /// Completed lifetimes in completion order.
    pub fn completed(&self) -> &[FlitLifetime] {
        &self.done
    }

    /// Packet latencies of successfully ejected flits, sorted ascending.
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .done
            .iter()
            .filter(|l| !l.dropped)
            .map(|l| l.reported_latency)
            .collect();
        v.sort_unstable();
        v
    }

    /// Exact nearest-rank percentile over ejected-flit latencies.
    /// `p` in [0, 100]. Returns `None` when nothing has been ejected.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        percentile_of_sorted(&self.sorted_latencies(), p)
    }

    /// The `n` slowest ejected flits, slowest first.
    pub fn top_slowest(&self, n: usize) -> Vec<&FlitLifetime> {
        let mut v: Vec<&FlitLifetime> = self.done.iter().filter(|l| !l.dropped).collect();
        v.sort_by(|a, b| {
            b.reported_latency
                .cmp(&a.reported_latency)
                .then(a.packet.cmp(&b.packet))
                .then(a.flit_index.cmp(&b.flit_index))
        });
        v.truncate(n);
        v
    }

    pub fn summary(&self) -> LifetimeSummary {
        let lat = self.sorted_latencies();
        let mean = if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / lat.len() as f64
        };
        LifetimeSummary {
            injected: self.injected,
            ejected: self.ejected,
            dropped: self.dropped,
            in_flight: self.open.len() as u64,
            mean_latency: mean,
            p50: percentile_of_sorted(&lat, 50.0).unwrap_or(0),
            p90: percentile_of_sorted(&lat, 90.0).unwrap_or(0),
            p99: percentile_of_sorted(&lat, 99.0).unwrap_or(0),
            max_latency: lat.last().copied().unwrap_or(0),
        }
    }
}

/// Exact nearest-rank percentile of an ascending-sorted slice.
pub fn percentile_of_sorted(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

/// Aggregate view of the lifetime population, serialized into run outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeSummary {
    pub injected: u64,
    pub ejected: u64,
    pub dropped: u64,
    pub in_flight: u64,
    pub mean_latency: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max_latency: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{NodeId, PacketId};

    fn inject(cycle: u64, pkt: u64, fi: u16) -> TraceEvent {
        TraceEvent::Inject {
            cycle,
            node: NodeId(0),
            packet: PacketId(pkt),
            flit_index: fi,
        }
    }

    fn eject(cycle: u64, pkt: u64, fi: u16, lat: u64) -> TraceEvent {
        TraceEvent::Eject {
            cycle,
            node: NodeId(5),
            packet: PacketId(pkt),
            flit_index: fi,
            latency: lat,
        }
    }

    #[test]
    fn pairs_inject_with_eject_and_drop() {
        let mut lt = FlitLifetimes::new();
        lt.observe(&inject(1, 7, 0));
        lt.observe(&inject(1, 7, 1));
        lt.observe(&eject(9, 7, 0, 8));
        lt.observe(&TraceEvent::Drop {
            cycle: 4,
            node: NodeId(2),
            packet: PacketId(7),
            flit_index: 1,
        });
        assert_eq!(lt.injected(), 2);
        assert_eq!(lt.ejected(), 1);
        assert_eq!(lt.dropped(), 1);
        assert_eq!(lt.still_open(), 0);
        let done = lt.completed();
        assert_eq!(done.len(), 2);
        assert!(!done[0].dropped);
        assert_eq!(done[0].network_latency(), 8);
        assert!(done[1].dropped);
        assert_eq!(done[1].end_node, 2);
    }

    #[test]
    fn exact_percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_of_sorted(&sorted, 50.0), Some(50));
        assert_eq!(percentile_of_sorted(&sorted, 99.0), Some(99));
        assert_eq!(percentile_of_sorted(&sorted, 100.0), Some(100));
        assert_eq!(percentile_of_sorted(&sorted, 0.0), Some(1));
        assert_eq!(percentile_of_sorted(&[], 50.0), None);
        assert_eq!(percentile_of_sorted(&[7], 99.0), Some(7));
    }

    #[test]
    fn top_slowest_orders_and_truncates() {
        let mut lt = FlitLifetimes::new();
        for (pkt, lat) in [(1u64, 5u64), (2, 50), (3, 20), (4, 50)] {
            lt.observe(&inject(0, pkt, 0));
            lt.observe(&eject(lat, pkt, 0, lat));
        }
        let top = lt.top_slowest(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].reported_latency, 50);
        assert_eq!(top[1].reported_latency, 50);
        // Ties break on packet id for deterministic output.
        assert!(top[0].packet < top[1].packet);
        assert_eq!(top[2].reported_latency, 20);
    }

    #[test]
    fn retransmission_reopens_key() {
        let mut lt = FlitLifetimes::new();
        lt.observe(&inject(1, 9, 0));
        lt.observe(&TraceEvent::Drop {
            cycle: 3,
            node: NodeId(1),
            packet: PacketId(9),
            flit_index: 0,
        });
        lt.observe(&inject(10, 9, 0));
        lt.observe(&eject(15, 9, 0, 14));
        assert_eq!(lt.completed().len(), 2);
        assert_eq!(lt.summary().ejected, 1);
        assert_eq!(lt.summary().dropped, 1);
        assert_eq!(lt.still_open(), 0);
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let mut lt = FlitLifetimes::new();
        lt.observe(&inject(0, 1, 0));
        lt.observe(&eject(6, 1, 0, 6));
        let s = lt.summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: LifetimeSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

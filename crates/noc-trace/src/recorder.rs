//! Bounded event storage: a ring buffer that keeps the newest events.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// Ring-buffered event store. Once `capacity` events are held, each new
/// event evicts the oldest one, so multi-million-cycle runs record the
/// *tail* of the simulation in bounded memory. `total_seen` still counts
/// every event ever pushed.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    total_seen: u64,
}

impl RingRecorder {
    /// `capacity` of zero means unbounded (keep everything).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity,
            buf: VecDeque::new(),
            total_seen: 0,
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        self.total_seen += 1;
        if self.capacity > 0 && self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events pushed over the recorder's lifetime, including evicted ones.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// True if events have been evicted to respect the capacity bound.
    pub fn overflowed(&self) -> bool {
        self.total_seen > self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Drain the retained events, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{NodeId, PacketId};

    fn inject(cycle: u64) -> TraceEvent {
        TraceEvent::Inject {
            cycle,
            node: NodeId(0),
            packet: PacketId(cycle),
            flit_index: 0,
        }
    }

    #[test]
    fn keeps_newest_when_full() {
        let mut r = RingRecorder::new(3);
        for c in 0..10 {
            r.push(inject(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_seen(), 10);
        assert!(r.overflowed());
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut r = RingRecorder::new(0);
        for c in 0..100 {
            r.push(inject(c));
        }
        assert_eq!(r.len(), 100);
        assert!(!r.overflowed());
        assert_eq!(r.into_events().len(), 100);
    }
}

//! Per-cycle time-series samplers for aggregate network state.

use noc_core::Cycle;
use serde::{Deserialize, Serialize};

/// One aggregate-state snapshot, produced by the engine each cycle while a
/// recording sink is attached.
#[derive(Debug, Clone, Copy)]
pub struct CycleSample<'a> {
    pub cycle: Cycle,
    /// Flits currently inside routers or on links.
    pub in_flight: u64,
    /// Flits waiting in source queues, not yet injected.
    pub backlog: u64,
    /// Link traversals that happened this cycle (all links).
    pub link_traversals: u64,
    /// Buffer occupancy per router, indexed by node id.
    pub per_router_occupancy: &'a [usize],
}

/// A named, strided time series of f64 samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleSeries {
    pub label: String,
    /// Cycles between consecutive samples.
    pub stride: u64,
    pub values: Vec<f64>,
}

impl SampleSeries {
    pub fn new(label: &str, stride: u64) -> Self {
        SampleSeries {
            label: label.to_string(),
            stride,
            values: Vec::new(),
        }
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// The standard sampler bundle: in-flight flits, injection backlog, link
/// utilization and router occupancy, each sampled every `stride` cycles,
/// plus per-node accumulators (sampled every cycle) for heatmaps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesSet {
    pub stride: u64,
    /// Cycles observed (all, not just sampled ones).
    pub observed: u64,
    pub in_flight: SampleSeries,
    pub backlog: SampleSeries,
    pub link_util: SampleSeries,
    pub mean_occupancy: SampleSeries,
    /// Sum of per-cycle buffer occupancy per node; divide by `observed`
    /// for the time-average used in heatmaps.
    pub node_occupancy_accum: Vec<f64>,
    /// Total link traversals per cycle, accumulated (for mean utilization).
    pub total_traversals: u64,
}

impl SeriesSet {
    pub fn new(stride: u64) -> Self {
        let stride = stride.max(1);
        SeriesSet {
            stride,
            observed: 0,
            in_flight: SampleSeries::new("in_flight_flits", stride),
            backlog: SampleSeries::new("injection_backlog", stride),
            link_util: SampleSeries::new("link_traversals_per_cycle", stride),
            mean_occupancy: SampleSeries::new("mean_router_occupancy", stride),
            node_occupancy_accum: Vec::new(),
            total_traversals: 0,
        }
    }

    pub fn observe(&mut self, s: &CycleSample<'_>) {
        if self.node_occupancy_accum.len() < s.per_router_occupancy.len() {
            self.node_occupancy_accum
                .resize(s.per_router_occupancy.len(), 0.0);
        }
        for (acc, &occ) in self
            .node_occupancy_accum
            .iter_mut()
            .zip(s.per_router_occupancy)
        {
            *acc += occ as f64;
        }
        self.total_traversals += s.link_traversals;

        if self.observed.is_multiple_of(self.stride) {
            let n = s.per_router_occupancy.len().max(1) as f64;
            let occ_sum: usize = s.per_router_occupancy.iter().sum();
            self.in_flight.push(s.in_flight as f64);
            self.backlog.push(s.backlog as f64);
            self.link_util.push(s.link_traversals as f64);
            self.mean_occupancy.push(occ_sum as f64 / n);
        }
        self.observed += 1;
    }

    /// Time-averaged buffer occupancy per node, for heatmap rendering.
    pub fn mean_node_occupancy(&self) -> Vec<f64> {
        let denom = self.observed.max(1) as f64;
        self.node_occupancy_accum
            .iter()
            .map(|&a| a / denom)
            .collect()
    }

    /// Mean link traversals per observed cycle.
    pub fn mean_link_utilization(&self) -> f64 {
        self.total_traversals as f64 / self.observed.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_sampling_and_accumulators() {
        let mut set = SeriesSet::new(4);
        let occ = [1usize, 3];
        for cycle in 0..12 {
            set.observe(&CycleSample {
                cycle,
                in_flight: 5,
                backlog: 2,
                link_traversals: 3,
                per_router_occupancy: &occ,
            });
        }
        // Sampled on cycles 0, 4, 8.
        assert_eq!(set.in_flight.len(), 3);
        assert_eq!(set.observed, 12);
        assert_eq!(set.mean_occupancy.values[0], 2.0);
        assert_eq!(set.mean_node_occupancy(), vec![1.0, 3.0]);
        assert_eq!(set.mean_link_utilization(), 3.0);
    }

    #[test]
    fn series_set_roundtrips_through_serde() {
        let mut set = SeriesSet::new(1);
        set.observe(&CycleSample {
            cycle: 0,
            in_flight: 1,
            backlog: 0,
            link_traversals: 2,
            per_router_occupancy: &[0, 4],
        });
        let json = serde_json::to_string(&set).unwrap();
        let back: SeriesSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.observed, 1);
        assert_eq!(back.in_flight.values, set.in_flight.values);
        assert_eq!(back.node_occupancy_accum, set.node_occupancy_accum);
    }
}

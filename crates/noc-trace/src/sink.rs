//! The sink abstraction routers and the engine write trace data into.
//!
//! Two halves:
//!
//! * [`TraceBuf`] — a per-step staging buffer embedded in the simulator's
//!   `StepCtx`. Routers call [`TraceBuf::emit`] with a closure; when
//!   tracing is off (the default) the closure is never run, so the cost is
//!   a single branch per emission site.
//! * [`TraceSink`] — where staged events and per-cycle samples go.
//!   [`NullSink`] discards everything and keeps `TraceBuf` disabled;
//!   [`RecordingSink`] feeds a [`RingRecorder`], a [`SeriesSet`] and a
//!   [`FlitLifetimes`] population.

use crate::event::TraceEvent;
use crate::lifetime::FlitLifetimes;
use crate::recorder::RingRecorder;
use crate::series::{CycleSample, SeriesSet};

/// Receiver for trace events and per-cycle samples.
pub trait TraceSink {
    /// Whether events should be generated at all. The engine propagates
    /// this into each `TraceBuf` so emission sites can skip event
    /// construction entirely.
    fn is_recording(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &TraceEvent) {}

    fn sample_cycle(&mut self, _s: &CycleSample<'_>) {}

    /// Recover the concrete [`RecordingSink`] behind a `dyn TraceSink`
    /// without dragging `Any` through the simulator. `None` for sinks that
    /// keep no recoverable state (e.g. [`NullSink`]).
    fn as_recording(&self) -> Option<&RecordingSink> {
        None
    }

    fn as_recording_mut(&mut self) -> Option<&mut RecordingSink> {
        None
    }

    /// Owned variant of [`TraceSink::as_recording`], for recovering the
    /// recording after detaching the sink from a network.
    fn into_recording(self: Box<Self>) -> Option<RecordingSink> {
        None
    }
}

/// The zero-cost default: nothing is recorded, `is_recording` is false.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Records everything: ring-buffered events, strided time series and the
/// per-flit lifetime population.
#[derive(Debug)]
pub struct RecordingSink {
    pub recorder: RingRecorder,
    pub series: SeriesSet,
    pub lifetimes: FlitLifetimes,
}

impl RecordingSink {
    /// `event_capacity` of zero keeps every event; `sample_stride` of one
    /// samples every cycle.
    pub fn new(event_capacity: usize, sample_stride: u64) -> Self {
        RecordingSink {
            recorder: RingRecorder::new(event_capacity),
            series: SeriesSet::new(sample_stride),
            lifetimes: FlitLifetimes::new(),
        }
    }
}

impl TraceSink for RecordingSink {
    fn is_recording(&self) -> bool {
        true
    }

    fn record(&mut self, ev: &TraceEvent) {
        self.lifetimes.observe(ev);
        self.recorder.push(ev.clone());
    }

    fn sample_cycle(&mut self, s: &CycleSample<'_>) {
        self.series.observe(s);
    }

    fn as_recording(&self) -> Option<&RecordingSink> {
        Some(self)
    }

    fn as_recording_mut(&mut self) -> Option<&mut RecordingSink> {
        Some(self)
    }

    fn into_recording(self: Box<Self>) -> Option<RecordingSink> {
        Some(*self)
    }
}

/// Per-step staging buffer for router-emitted events.
///
/// Lives inside the simulator's `StepCtx` so router models can emit events
/// without holding a reference to the sink (which the engine owns). The
/// engine drains it into the sink after each router step.
#[derive(Debug, Default)]
pub struct TraceBuf {
    enabled: bool,
    pub events: Vec<TraceEvent>,
}

impl TraceBuf {
    pub fn new(enabled: bool) -> Self {
        TraceBuf {
            enabled,
            events: Vec::new(),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Stage an event. `make` only runs when tracing is enabled, so the
    /// disabled path costs one predictable branch.
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&mut self, make: F) {
        if self.enabled {
            self.events.push(make());
        }
    }

    /// Move all staged events into `sink`, preserving order.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        for ev in self.events.drain(..) {
            sink.record(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{NodeId, PacketId};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Inject {
            cycle,
            node: NodeId(1),
            packet: PacketId(cycle),
            flit_index: 0,
        }
    }

    #[test]
    fn disabled_buf_never_runs_the_closure() {
        let mut buf = TraceBuf::default();
        let mut ran = false;
        buf.emit(|| {
            ran = true;
            ev(0)
        });
        assert!(!ran);
        assert!(buf.events.is_empty());
    }

    #[test]
    fn enabled_buf_drains_into_sink_in_order() {
        let mut buf = TraceBuf::new(true);
        buf.emit(|| ev(1));
        buf.emit(|| ev(2));
        let mut sink = RecordingSink::new(0, 1);
        buf.drain_into(&mut sink);
        assert!(buf.events.is_empty());
        let cycles: Vec<u64> = sink.recorder.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![1, 2]);
        assert_eq!(sink.lifetimes.injected(), 2);
    }

    #[test]
    fn null_sink_reports_not_recording() {
        assert!(!NullSink.is_recording());
        let mut sink = NullSink;
        sink.record(&ev(3));
        sink.sample_cycle(&CycleSample {
            cycle: 0,
            in_flight: 0,
            backlog: 0,
            link_traversals: 0,
            per_router_occupancy: &[],
        });
    }
}

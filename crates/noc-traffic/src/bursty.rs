//! Bursty (self-similar) injection processes.
//!
//! Real workloads are not Bernoulli: packet arrivals cluster into bursts
//! whose on/off dwell times are correlated (MMPP) or heavy-tailed
//! (Pareto on/off, the classic self-similar traffic construction). This
//! module layers a per-node *source process* under any spatial
//! [`Pattern`]: the process decides **when** a node fires, the pattern
//! decides **where** the packet goes. All processes are parameterized so
//! their stationary mean equals the requested injection rate — bursty
//! and Bernoulli runs at the same load are directly comparable.
//!
//! Each node owns an independent, seeded process stream, so the full
//! injection schedule replays bit-identically from the seed (pinned by
//! the replay-hash goldens in `tests/determinism.rs`).

use crate::patterns::{BoundPattern, Pattern};
use noc_core::flit::{FlitKind, PacketDesc, PacketId};
use noc_core::types::{Cycle, NodeId};
use noc_core::Rng;
use noc_topology::Mesh;

use crate::TrafficModel;

/// Stationary fraction of time the MMPP spends in the high state.
const MMPP_HIGH_FRACTION: f64 = 0.25;
/// Mean sojourn in the MMPP high state, cycles (low = 3x, preserving the
/// 1:3 stationary split).
const MMPP_MEAN_HIGH: f64 = 25.0;
/// Pareto shape: 1 < alpha < 2 gives finite mean but infinite variance —
/// the heavy tail that makes aggregate traffic self-similar.
const PARETO_ALPHA: f64 = 1.5;
/// Mean Pareto ON-period length, cycles.
const PARETO_MEAN_ON: f64 = 30.0;
/// Sanity cap on a single sampled dwell time.
const PARETO_MAX_DWELL: u64 = 1_000_000;

/// A per-node injection process. The `name()` string is the canonical
/// identity used by CLI flags, scenario specs and campaign cache keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstSource {
    /// Memoryless coin flip each cycle — the PR-7 baseline process.
    Bernoulli,
    /// Two-state Markov-modulated process: a high state firing at
    /// `burstiness x rate` and a low state chosen so the stationary mean
    /// is exactly `rate`. Geometric sojourns (mean 25 / 75 cycles).
    /// `burstiness` is clamped to `[1, 4]` (at 4 the low state is silent).
    Mmpp2 { burstiness: f64 },
    /// Pareto on/off: alternating ON (fires at `rate / duty`) and OFF
    /// (silent) periods with Pareto(alpha = 1.5) dwell times — heavy
    /// tails, so bursts cluster across every timescale. `duty` is the ON
    /// fraction, clamped to `[rate, 1]` so the mean stays achievable.
    ParetoOnOff { duty: f64 },
}

impl BurstSource {
    /// Canonical parsable name: `bernoulli`, `mmpp:<burstiness>`,
    /// `pareto:<duty>`.
    pub fn name(&self) -> String {
        match self {
            BurstSource::Bernoulli => "bernoulli".to_string(),
            BurstSource::Mmpp2 { burstiness } => format!("mmpp:{burstiness:.3}"),
            BurstSource::ParetoOnOff { duty } => format!("pareto:{duty:.3}"),
        }
    }

    /// Parse [`name`](Self::name)'s format (case-insensitive kind).
    pub fn from_name(s: &str) -> Option<BurstSource> {
        let (kind, param) = match s.split_once(':') {
            Some((k, p)) => (k, Some(p)),
            None => (s, None),
        };
        match (kind.to_ascii_lowercase().as_str(), param) {
            ("bernoulli", None) => Some(BurstSource::Bernoulli),
            ("mmpp", Some(p)) => p
                .parse()
                .ok()
                .map(|burstiness| BurstSource::Mmpp2 { burstiness }),
            ("mmpp", None) => Some(BurstSource::Mmpp2 { burstiness: 3.0 }),
            ("pareto", Some(p)) => p.parse().ok().map(|duty| BurstSource::ParetoOnOff { duty }),
            ("pareto", None) => Some(BurstSource::ParetoOnOff { duty: 0.25 }),
            _ => None,
        }
    }

    /// Human-readable forms for unknown-name CLI errors.
    pub const KNOWN: &'static [&'static str] = &["bernoulli", "mmpp:<burstiness>", "pareto:<duty>"];

    /// Materialize the per-node state for a mean injection rate
    /// (packets/node/cycle). `rng` seeds the initial phase so nodes start
    /// desynchronized.
    fn bind(&self, rate: f64, rng: &mut Rng) -> SourceState {
        match *self {
            BurstSource::Bernoulli => SourceState::Bernoulli { rate },
            BurstSource::Mmpp2 { burstiness } => {
                let b = burstiness.clamp(1.0, 1.0 / MMPP_HIGH_FRACTION);
                let rate_high = (b * rate).min(1.0);
                // Low-state rate balancing the stationary mean back to
                // `rate` (>= 0 by the burstiness clamp, and the high-rate
                // clamp only ever raises it).
                let rate_low = ((rate - MMPP_HIGH_FRACTION * rate_high)
                    / (1.0 - MMPP_HIGH_FRACTION))
                    .clamp(0.0, 1.0);
                SourceState::Mmpp {
                    high: rng.gen_bool(MMPP_HIGH_FRACTION),
                    rate_high,
                    rate_low,
                    leave_high: 1.0 / MMPP_MEAN_HIGH,
                    leave_low: MMPP_HIGH_FRACTION / (1.0 - MMPP_HIGH_FRACTION) / MMPP_MEAN_HIGH,
                }
            }
            BurstSource::ParetoOnOff { duty } => {
                let duty = duty.clamp(rate.clamp(1e-6, 1.0), 1.0);
                let mean_off = PARETO_MEAN_ON * (1.0 - duty) / duty;
                // Pareto mean = alpha * xm / (alpha - 1) => xm = mean / 3
                // at alpha = 1.5.
                let scale = (PARETO_ALPHA - 1.0) / PARETO_ALPHA;
                let mut st = SourceState::Pareto {
                    on: false,
                    remaining: 0,
                    rate_on: (rate / duty).min(1.0),
                    xm_on: PARETO_MEAN_ON * scale,
                    xm_off: (mean_off * scale).max(1e-3),
                };
                // Roll the initial period so nodes start out of phase.
                st.fire(rng);
                st
            }
        }
    }
}

// Serialized as the canonical name string; JSON null (a spec written
// before the burstiness axis existed) means Bernoulli.
impl serde::Serialize for BurstSource {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name())
    }
}

impl serde::Deserialize for BurstSource {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(BurstSource::Bernoulli);
        }
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::msg("BurstSource: expected string"))?;
        BurstSource::from_name(s)
            .ok_or_else(|| serde::Error::msg(format!("unknown burst source {s:?}")))
    }
}

/// Runtime state of one node's injection process.
#[derive(Debug, Clone)]
enum SourceState {
    Bernoulli {
        rate: f64,
    },
    Mmpp {
        high: bool,
        rate_high: f64,
        rate_low: f64,
        leave_high: f64,
        leave_low: f64,
    },
    Pareto {
        on: bool,
        remaining: u64,
        rate_on: f64,
        xm_on: f64,
        xm_off: f64,
    },
}

impl SourceState {
    /// Advance one cycle; true when the node injects a packet this cycle.
    fn fire(&mut self, rng: &mut Rng) -> bool {
        match self {
            SourceState::Bernoulli { rate } => rng.gen_bool(*rate),
            SourceState::Mmpp {
                high,
                rate_high,
                rate_low,
                leave_high,
                leave_low,
            } => {
                let leave = if *high { *leave_high } else { *leave_low };
                if rng.gen_bool(leave) {
                    *high = !*high;
                }
                let r = if *high { *rate_high } else { *rate_low };
                rng.gen_bool(r)
            }
            SourceState::Pareto {
                on,
                remaining,
                rate_on,
                xm_on,
                xm_off,
            } => {
                if *remaining == 0 {
                    *on = !*on;
                    let xm = if *on { *xm_on } else { *xm_off };
                    // Inverse-CDF Pareto sample: xm / U^(1/alpha) with
                    // U in (0, 1].
                    let u = 1.0 - rng.gen_f64();
                    let dwell = xm * u.powf(-1.0 / PARETO_ALPHA);
                    *remaining = (dwell.round() as u64).clamp(1, PARETO_MAX_DWELL);
                }
                *remaining -= 1;
                *on && rng.gen_bool(*rate_on)
            }
        }
    }
}

/// Open-loop injection of a synthetic pattern driven by a per-node
/// [`BurstSource`] process, optionally restricted to a subset of source
/// routers (the scenario engine's per-application regions).
///
/// Per-node RNG streams key on the *node id* (not the position in the
/// source list), so the same node produces the same schedule regardless
/// of which region it is grouped into.
#[derive(Debug, Clone)]
pub struct BurstyTraffic {
    pattern: BoundPattern,
    sources: Vec<NodeId>,
    states: Vec<SourceState>,
    rngs: Vec<Rng>,
    rate: f64,
    packet_len: u8,
    next_seq: u64,
    label: String,
}

impl BurstyTraffic {
    /// All routers inject. `rate` is packets/node/cycle.
    pub fn new(
        pattern: Pattern,
        mesh: Mesh,
        source: BurstSource,
        rate: f64,
        packet_len: u8,
        seed: u64,
    ) -> BurstyTraffic {
        let all = mesh.nodes().collect();
        BurstyTraffic::for_sources(pattern, mesh, all, source, rate, packet_len, seed)
    }

    /// Only `sources` inject (destinations still span the whole mesh).
    pub fn for_sources(
        pattern: Pattern,
        mesh: Mesh,
        sources: Vec<NodeId>,
        source: BurstSource,
        rate: f64,
        packet_len: u8,
        seed: u64,
    ) -> BurstyTraffic {
        assert!((0.0..=1.0).contains(&rate));
        assert!(packet_len >= 1);
        let mut rngs: Vec<Rng> = sources
            .iter()
            .map(|n| Rng::stream(seed, 0x6B57_A11C ^ n.index() as u64))
            .collect();
        let states = rngs.iter_mut().map(|rng| source.bind(rate, rng)).collect();
        let label = format!("{}+{}@{:.3}", pattern.abbrev(), source.name(), rate);
        BurstyTraffic {
            pattern: BoundPattern::new(pattern, mesh, seed),
            sources,
            states,
            rngs,
            rate,
            packet_len,
            next_seq: 0,
            label,
        }
    }

    /// The bound pattern (for tests and reports).
    pub fn pattern(&self) -> &BoundPattern {
        &self.pattern
    }

    /// Requested mean injection rate, packets/node/cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The injecting routers.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }
}

impl TrafficModel for BurstyTraffic {
    fn poll(&mut self, cycle: Cycle) -> Vec<PacketDesc> {
        let mut out = Vec::new();
        self.poll_into(cycle, &mut out);
        out
    }

    fn poll_into(&mut self, cycle: Cycle, out: &mut Vec<PacketDesc>) {
        for i in 0..self.sources.len() {
            let rng = &mut self.rngs[i];
            if !self.states[i].fire(rng) {
                continue;
            }
            let src = self.sources[i];
            if let Some(dst) = self.pattern.dest(src, rng) {
                out.push(PacketDesc {
                    id: PacketId(self.next_seq),
                    src,
                    dst,
                    len: self.packet_len,
                    created: cycle,
                    kind: FlitKind::Synthetic,
                });
                self.next_seq += 1;
            }
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    const RATE: f64 = 0.1;
    const CYCLES: u64 = 60_000;
    /// Burstiness window, cycles.
    const WINDOW: u64 = 100;

    /// Per-window aggregate injection counts over the whole mesh.
    fn window_counts(source: BurstSource, seed: u64) -> Vec<f64> {
        let mut t = BurstyTraffic::new(Pattern::UniformRandom, mesh8(), source, RATE, 1, seed);
        let mut counts = Vec::new();
        let mut acc = 0usize;
        for c in 0..CYCLES {
            acc += t.poll(c).len();
            if (c + 1) % WINDOW == 0 {
                counts.push(acc as f64);
                acc = 0;
            }
        }
        counts
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Index of dispersion of counts: var/mean of per-window totals —
    /// ~1 for Poisson/Bernoulli, > 1 for bursty arrivals.
    fn dispersion(xs: &[f64]) -> f64 {
        let m = mean(xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
        var / m
    }

    #[test]
    fn bursty_sources_converge_to_requested_rate() {
        for source in [
            BurstSource::Bernoulli,
            BurstSource::Mmpp2 { burstiness: 3.0 },
            BurstSource::ParetoOnOff { duty: 0.25 },
        ] {
            let counts = window_counts(source, 11);
            // UR never maps to self on >1 nodes, so every firing becomes
            // a packet: the achieved rate is directly comparable.
            let rate = mean(&counts) / (WINDOW as f64 * 64.0);
            assert!(
                (rate - RATE).abs() < 0.15 * RATE,
                "{} rate {rate} (want {RATE})",
                source.name()
            );
        }
    }

    #[test]
    fn bursty_sources_exceed_bernoulli_dispersion() {
        let base = dispersion(&window_counts(BurstSource::Bernoulli, 11));
        // Bernoulli aggregate is binomial: dispersion ~ 1 - p.
        assert!(base < 1.1, "bernoulli dispersion {base}");
        for source in [
            BurstSource::Mmpp2 { burstiness: 3.0 },
            BurstSource::ParetoOnOff { duty: 0.25 },
        ] {
            let d = dispersion(&window_counts(source, 11));
            assert!(
                d > 1.5 * base,
                "{} dispersion {d} not above bernoulli {base}",
                source.name()
            );
        }
    }

    #[test]
    fn bernoulli_source_matches_synthetic_traffic() {
        // The Bernoulli burst source consumes RNG draws exactly like the
        // plain generator: same coin, then the pattern's draws — so the
        // per-cycle packet count distribution matches.
        let mut a = BurstyTraffic::new(
            Pattern::Complement,
            mesh8(),
            BurstSource::Bernoulli,
            1.0,
            1,
            3,
        );
        assert_eq!(a.poll(0).len(), 64);
    }

    #[test]
    fn region_restriction_only_injects_from_sources() {
        let left: Vec<NodeId> = mesh8()
            .nodes()
            .filter(|n| mesh8().coord_of(*n).x < 4)
            .collect();
        let mut t = BurstyTraffic::for_sources(
            Pattern::UniformRandom,
            mesh8(),
            left.clone(),
            BurstSource::Mmpp2 { burstiness: 3.0 },
            0.5,
            1,
            7,
        );
        let mut any = false;
        for c in 0..200 {
            for p in t.poll(c) {
                any = true;
                assert!(left.contains(&p.src), "packet from outside the region");
                // Destinations may be anywhere on the mesh.
                assert!(p.dst.index() < 64);
            }
        }
        assert!(any);
    }

    #[test]
    fn node_streams_do_not_depend_on_region_grouping() {
        // The same node injects the same schedule whether it is grouped
        // alone or with the whole mesh (streams key on node id).
        let m = mesh8();
        let solo = vec![NodeId(17)];
        let mut a = BurstyTraffic::for_sources(
            Pattern::Tornado,
            m,
            solo,
            BurstSource::ParetoOnOff { duty: 0.25 },
            0.3,
            1,
            5,
        );
        let mut b = BurstyTraffic::new(
            Pattern::Tornado,
            m,
            BurstSource::ParetoOnOff { duty: 0.25 },
            0.3,
            1,
            5,
        );
        for c in 0..2_000 {
            let only: Vec<_> = b
                .poll(c)
                .into_iter()
                .filter(|p| p.src == NodeId(17))
                .collect();
            let mine = a.poll(c);
            assert_eq!(
                mine.iter()
                    .map(|p| (p.src, p.dst, p.created))
                    .collect::<Vec<_>>(),
                only.iter()
                    .map(|p| (p.src, p.dst, p.created))
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn names_roundtrip_and_reject_unknown() {
        for s in [
            BurstSource::Bernoulli,
            BurstSource::Mmpp2 { burstiness: 2.0 },
            BurstSource::ParetoOnOff { duty: 0.125 },
        ] {
            assert_eq!(BurstSource::from_name(&s.name()), Some(s));
            let v = serde::Serialize::to_value(&s);
            let back: BurstSource = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, s);
        }
        assert_eq!(
            BurstSource::from_name("mmpp"),
            Some(BurstSource::Mmpp2 { burstiness: 3.0 })
        );
        assert!(BurstSource::from_name("weibull").is_none());
        assert!(BurstSource::from_name("mmpp:abc").is_none());
        // Legacy specs without the field deserialize to Bernoulli.
        let legacy: BurstSource = serde::Deserialize::from_value(&serde::Value::Null).unwrap();
        assert_eq!(legacy, BurstSource::Bernoulli);
    }

    #[test]
    fn label_names_pattern_process_and_rate() {
        let t = BurstyTraffic::new(
            Pattern::UniformRandom,
            mesh8(),
            BurstSource::Mmpp2 { burstiness: 3.0 },
            0.2,
            1,
            1,
        );
        assert_eq!(t.label(), "UR+mmpp:3.000@0.200");
    }
}

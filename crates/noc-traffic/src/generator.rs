//! The traffic-model interface and the open-loop synthetic generator.
//!
//! The engine polls the model once per cycle for newly created packets and
//! notifies it when packets are fully reassembled at their destination —
//! that callback is what closes the loop for the SPLASH-2 model and for
//! SCARAB-style retransmission bookkeeping.

use crate::patterns::{BoundPattern, Pattern};
use noc_core::flit::{FlitKind, PacketDesc, PacketId};
use noc_core::types::{Cycle, NodeId};
use noc_core::Rng;
use noc_topology::Mesh;

/// Notification that a packet was fully delivered (all flits ejected and
/// reassembled at the destination MSHR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredPacket {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    pub kind: FlitKind,
    pub created: Cycle,
    pub delivered: Cycle,
}

/// A network-wide traffic model.
///
/// `poll` is called exactly once per cycle *before* injection and returns
/// the packets created in that cycle (any number, any source nodes).
/// `on_delivered` is called once per fully reassembled packet.
pub trait TrafficModel {
    /// Packets created at `cycle`.
    fn poll(&mut self, cycle: Cycle) -> Vec<PacketDesc>;

    /// Like [`poll`](Self::poll), appending into a caller-owned buffer.
    /// The engine calls this with one scratch `Vec` reused across cycles,
    /// so models that override it (the built-in generators do) keep the
    /// steady-state injection path allocation-free. The default delegates
    /// to `poll`, so external models only need the one method.
    fn poll_into(&mut self, cycle: Cycle, out: &mut Vec<PacketDesc>) {
        out.extend(self.poll(cycle));
    }

    /// Callback when a packet completes.
    fn on_delivered(&mut self, delivered: &DeliveredPacket) {
        let _ = delivered;
    }

    /// For finite (closed-loop) workloads: true when every transaction has
    /// completed. Open-loop models never finish.
    fn finished(&self) -> bool {
        false
    }

    /// Whether the engine must never drop this model's packets at a full
    /// source queue. Open-loop Bernoulli sources tolerate source-side loss
    /// beyond the queue cap (the uninjected surplus is still *offered*
    /// load); closed-loop workloads would deadlock, so they override this.
    fn lossless(&self) -> bool {
        false
    }

    /// Human-readable label for reports.
    fn label(&self) -> String;
}

/// Open-loop Bernoulli injection of a synthetic pattern.
///
/// Every node flips an `injection_prob` coin each cycle ("packets are
/// injected according to the Bernoulli process based on the given network
/// load"); on success a `packet_len`-flit packet is created with the
/// pattern's destination.
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    pattern: BoundPattern,
    injection_prob: f64,
    packet_len: u8,
    rngs: Vec<Rng>,
    next_seq: u64,
    label: String,
}

impl SyntheticTraffic {
    /// `injection_prob` is packets/node/cycle (the runner converts an
    /// offered load fraction through `SimConfig::injection_rate`).
    pub fn new(
        pattern: Pattern,
        mesh: Mesh,
        injection_prob: f64,
        packet_len: u8,
        seed: u64,
    ) -> SyntheticTraffic {
        assert!((0.0..=1.0).contains(&injection_prob));
        assert!(packet_len >= 1);
        let rngs = (0..mesh.num_nodes())
            .map(|i| Rng::stream(seed, 0x717AFF1C ^ i as u64))
            .collect();
        SyntheticTraffic {
            pattern: BoundPattern::new(pattern, mesh, seed),
            injection_prob,
            packet_len,
            rngs,
            next_seq: 0,
            label: format!("{}@{:.3}", pattern.abbrev(), injection_prob),
        }
    }

    /// The bound pattern (for tests and reports).
    pub fn pattern(&self) -> &BoundPattern {
        &self.pattern
    }
}

impl TrafficModel for SyntheticTraffic {
    fn poll(&mut self, cycle: Cycle) -> Vec<PacketDesc> {
        let mut out = Vec::new();
        self.poll_into(cycle, &mut out);
        out
    }

    fn poll_into(&mut self, cycle: Cycle, out: &mut Vec<PacketDesc>) {
        for i in 0..self.rngs.len() {
            let rng = &mut self.rngs[i];
            if !rng.gen_bool(self.injection_prob) {
                continue;
            }
            let src = NodeId(i as u16);
            if let Some(dst) = self.pattern.dest(src, rng) {
                out.push(PacketDesc {
                    id: PacketId(self.next_seq),
                    src,
                    dst,
                    len: self.packet_len,
                    created: cycle,
                    kind: FlitKind::Synthetic,
                });
                self.next_seq += 1;
            }
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn poll_rate_tracks_probability() {
        let mut t = SyntheticTraffic::new(Pattern::UniformRandom, mesh8(), 0.1, 1, 42);
        let cycles = 3000u64;
        let total: usize = (0..cycles).map(|c| t.poll(c).len()).sum();
        let rate = total as f64 / (cycles as f64 * 64.0);
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn zero_probability_generates_nothing() {
        let mut t = SyntheticTraffic::new(Pattern::UniformRandom, mesh8(), 0.0, 1, 42);
        assert!(t.poll(0).is_empty());
        assert!(!t.finished());
    }

    #[test]
    fn packet_ids_unique_and_fields_consistent() {
        let mut t = SyntheticTraffic::new(Pattern::Complement, mesh8(), 1.0, 4, 1);
        let mut ids = std::collections::HashSet::new();
        for c in 0..10 {
            for p in t.poll(c) {
                assert!(ids.insert(p.id), "duplicate id {:?}", p.id);
                assert_eq!(p.created, c);
                assert_eq!(p.len, 4);
                assert_ne!(p.src, p.dst);
                assert_eq!(p.kind, FlitKind::Synthetic);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SyntheticTraffic::new(Pattern::UniformRandom, mesh8(), 0.2, 1, 9);
        let mut b = SyntheticTraffic::new(Pattern::UniformRandom, mesh8(), 0.2, 1, 9);
        for c in 0..100 {
            assert_eq!(a.poll(c), b.poll(c));
        }
    }

    #[test]
    fn full_probability_injects_everywhere_possible() {
        let mut t = SyntheticTraffic::new(Pattern::Complement, mesh8(), 1.0, 1, 2);
        // complement has no fixed points on 64 nodes: all 64 nodes inject.
        assert_eq!(t.poll(0).len(), 64);
    }

    #[test]
    fn label_mentions_pattern() {
        let t = SyntheticTraffic::new(Pattern::Tornado, mesh8(), 0.25, 1, 2);
        assert!(t.label().contains("TOR"));
    }
}

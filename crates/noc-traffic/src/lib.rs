//! Traffic generation for the DXbar evaluation.
//!
//! * [`patterns`] — the paper's nine synthetic patterns (UR, NUR, BR, BF,
//!   CP, MT, PS, NB, TOR);
//! * [`generator`] — the [`TrafficModel`] trait consumed by the engine, the
//!   Bernoulli-injection synthetic model, and open-loop trace replay;
//! * [`splash`] — a closed-loop synthetic SPLASH-2 coherence workload model
//!   (the substitution for the paper's Simics/GEMS traces, see DESIGN.md);
//! * [`trace`] — recording and replaying packet traces.

pub mod generator;
pub mod patterns;
pub mod splash;
pub mod trace;

pub use generator::{DeliveredPacket, SyntheticTraffic, TrafficModel};
pub use patterns::Pattern;
pub use splash::{SplashApp, SplashTraffic};

//! Traffic generation for the DXbar evaluation.
//!
//! * [`patterns`] — the paper's nine synthetic patterns (UR, NUR, BR, BF,
//!   CP, MT, PS, NB, TOR);
//! * [`generator`] — the [`TrafficModel`] trait consumed by the engine, the
//!   Bernoulli-injection synthetic model, and open-loop trace replay;
//! * [`bursty`] — self-similar injection processes (two-state MMPP and
//!   Pareto on/off) layered under any spatial pattern, plus the
//!   region-restricted generator the scenario engine builds on;
//! * [`splash`] — a closed-loop synthetic SPLASH-2 coherence workload model
//!   (the substitution for the paper's Simics/GEMS traces, see DESIGN.md);
//! * [`trace`] — recording and replaying packet traces.

pub mod bursty;
pub mod generator;
pub mod patterns;
pub mod splash;
pub mod trace;

pub use bursty::{BurstSource, BurstyTraffic};
pub use generator::{DeliveredPacket, SyntheticTraffic, TrafficModel};
pub use patterns::Pattern;
pub use splash::{SplashApp, SplashTraffic};

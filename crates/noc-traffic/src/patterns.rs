//! The nine synthetic traffic patterns of the paper's evaluation
//! (Figs. 7 & 8): Uniform Random (UR), Non-Uniform Random (NUR), Bit
//! Reversal (BR), Butterfly (BF), Complement (CP), Matrix Transpose (MT),
//! Perfect Shuffle (PS), Neighbor (NB) and Tornado (TOR).
//!
//! Bit-permutation patterns (BR, BF, CP, PS) operate on the `log2(N)`-bit
//! node index and therefore require a power-of-two node count; coordinate
//! patterns (MT, NB, TOR) work on any mesh. NUR follows the paper: "NUR
//! creates hot-spot scenarios by injecting 25% additional traffic to a
//! select group of nodes".

use noc_core::types::NodeId;
use noc_core::Rng;
use noc_topology::{Coord, Mesh};
use serde::{Deserialize, Serialize};

/// A synthetic destination pattern.
///
/// ```
/// use noc_traffic::patterns::{BoundPattern, Pattern};
/// use noc_core::{types::NodeId, Rng};
/// use noc_topology::Mesh;
/// let p = BoundPattern::new(Pattern::Complement, Mesh::new(8, 8), 0);
/// let mut rng = Rng::seed_from(0);
/// // Bit-complement: node 5 (000101) talks to node 58 (111010).
/// assert_eq!(p.dest(NodeId(5), &mut rng), Some(NodeId(58)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    UniformRandom,
    NonUniformRandom,
    BitReversal,
    Butterfly,
    Complement,
    MatrixTranspose,
    PerfectShuffle,
    Neighbor,
    Tornado,
}

impl Pattern {
    /// All nine patterns in the paper's plotting order.
    pub const ALL: [Pattern; 9] = [
        Pattern::UniformRandom,
        Pattern::NonUniformRandom,
        Pattern::BitReversal,
        Pattern::Butterfly,
        Pattern::Complement,
        Pattern::MatrixTranspose,
        Pattern::PerfectShuffle,
        Pattern::Neighbor,
        Pattern::Tornado,
    ];

    /// The paper's abbreviation for the pattern.
    pub fn abbrev(self) -> &'static str {
        match self {
            Pattern::UniformRandom => "UR",
            Pattern::NonUniformRandom => "NUR",
            Pattern::BitReversal => "BR",
            Pattern::Butterfly => "BF",
            Pattern::Complement => "CP",
            Pattern::MatrixTranspose => "MT",
            Pattern::PerfectShuffle => "PS",
            Pattern::Neighbor => "NB",
            Pattern::Tornado => "TOR",
        }
    }

    /// Parse the paper's abbreviation.
    pub fn from_abbrev(s: &str) -> Option<Pattern> {
        Pattern::ALL.into_iter().find(|p| p.abbrev() == s)
    }

    /// Whether the pattern needs randomness per packet.
    pub fn is_random(self) -> bool {
        matches!(self, Pattern::UniformRandom | Pattern::NonUniformRandom)
    }

    /// Whether the pattern requires a power-of-two node count.
    pub fn needs_pow2(self) -> bool {
        matches!(
            self,
            Pattern::BitReversal
                | Pattern::Butterfly
                | Pattern::Complement
                | Pattern::PerfectShuffle
        )
    }
}

/// A pattern bound to a mesh, with NUR's hot-spot group materialized.
///
/// Patterns are computed in *terminal space*: on the concentrated mesh a
/// `w x h` router grid serves a `2w x 2h` terminal grid, so the pattern
/// maps terminal indices and the result folds back onto routers. On the
/// plain mesh and torus terminals and routers coincide, so nothing
/// changes (the torus wraparound only affects links, not coordinates).
#[derive(Debug, Clone)]
pub struct BoundPattern {
    pattern: Pattern,
    /// The router fabric packets actually traverse.
    mesh: Mesh,
    /// Terminal-space grid the pattern arithmetic runs on (a plain mesh;
    /// identical to the router grid unless the fabric is concentrated).
    tmesh: Mesh,
    bits: u32,
    /// NUR hot-spot terminals (empty for other patterns).
    hotspots: Vec<NodeId>,
}

/// Fraction of nodes in NUR's hot-spot group (8 of 64 on the 8x8 mesh).
const NUR_HOTSPOT_FRACTION: f64 = 0.125;
/// "25% additional traffic" to the hot-spot group.
const NUR_EXTRA_WEIGHT: f64 = 0.25;

impl BoundPattern {
    /// Bind `pattern` to `mesh`. For NUR the hot-spot group is drawn from
    /// `seed` (the same seed gives the same group, as in the paper).
    pub fn new(pattern: Pattern, mesh: Mesh, seed: u64) -> BoundPattern {
        let tmesh = Mesh::new(mesh.terminal_width(), mesh.terminal_height());
        let n = tmesh.num_nodes();
        if pattern.needs_pow2() {
            assert!(
                n.is_power_of_two(),
                "{:?} requires power-of-two terminal count",
                pattern
            );
        }
        let bits = n.trailing_zeros();
        let hotspots = if pattern == Pattern::NonUniformRandom {
            let count = ((n as f64 * NUR_HOTSPOT_FRACTION).round() as usize).max(1);
            let mut rng = Rng::stream(seed, 0x807);
            rng.choose_indices(n, count)
                .into_iter()
                .map(|i| NodeId(i as u16))
                .collect()
        } else {
            Vec::new()
        };
        BoundPattern {
            pattern,
            mesh,
            tmesh,
            bits,
            hotspots,
        }
    }

    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// NUR hot-spot group, as terminal indices (empty for other patterns).
    pub fn hotspots(&self) -> &[NodeId] {
        &self.hotspots
    }

    /// Destination router for a packet injected at router `src`. Returns
    /// `None` when the pattern maps the source to itself (that node
    /// generates no traffic), e.g. on the transpose diagonal, or — on the
    /// concentrated mesh — when source and destination terminals share a
    /// router (delivery is local, no network traffic).
    pub fn dest(&self, src: NodeId, rng: &mut Rng) -> Option<NodeId> {
        let tsrc = if self.mesh.concentration() == 1 {
            src
        } else {
            // The router injects on behalf of its 2x2 terminal block:
            // draw the source terminal uniformly within the block.
            let c = self.mesh.coord_of(src);
            self.tmesh.node_at(Coord {
                x: c.x * 2 + rng.gen_index(2) as u16,
                y: c.y * 2 + rng.gen_index(2) as u16,
            })
        };
        let tdst = self.terminal_dest(tsrc, rng)?;
        let dst = self.mesh.router_of_terminal(self.tmesh.coord_of(tdst));
        if dst == src {
            None
        } else {
            Some(dst)
        }
    }

    /// The pattern map itself, in terminal space.
    fn terminal_dest(&self, src: NodeId, rng: &mut Rng) -> Option<NodeId> {
        let n = self.tmesh.num_nodes();
        let idx = src.index();
        let dst = match self.pattern {
            Pattern::UniformRandom => {
                // Uniform over the other N-1 nodes.
                let mut d = rng.gen_index(n - 1);
                if d >= idx {
                    d += 1;
                }
                NodeId(d as u16)
            }
            Pattern::NonUniformRandom => {
                // Hot-spot group receives 25% additional traffic: with
                // probability w/(1+w) the packet is redirected to a random
                // hot-spot node, otherwise uniform.
                if rng.gen_bool(NUR_EXTRA_WEIGHT / (1.0 + NUR_EXTRA_WEIGHT)) {
                    self.hotspots[rng.gen_index(self.hotspots.len())]
                } else {
                    let mut d = rng.gen_index(n - 1);
                    if d >= idx {
                        d += 1;
                    }
                    NodeId(d as u16)
                }
            }
            Pattern::BitReversal => {
                let rev = (idx as u32).reverse_bits() >> (32 - self.bits);
                NodeId(rev as u16)
            }
            Pattern::Butterfly => {
                // Swap the most and least significant bits of the index.
                let b = self.bits;
                let lo = idx & 1;
                let hi = (idx >> (b - 1)) & 1;
                let mid = idx & !(1 | (1 << (b - 1)));
                NodeId((mid | (lo << (b - 1)) | hi) as u16)
            }
            Pattern::Complement => {
                let mask = (1usize << self.bits) - 1;
                NodeId((!idx & mask) as u16)
            }
            Pattern::MatrixTranspose => {
                let c = self.tmesh.coord_of(src);
                // Transpose is defined on square meshes; clamp for
                // rectangular ones by wrapping into range.
                let t = Coord {
                    x: c.y % self.tmesh.width(),
                    y: c.x % self.tmesh.height(),
                };
                self.tmesh.node_at(t)
            }
            Pattern::PerfectShuffle => {
                // Rotate the index left by one bit.
                let b = self.bits;
                let mask = (1usize << b) - 1;
                NodeId((((idx << 1) | (idx >> (b - 1))) & mask) as u16)
            }
            Pattern::Neighbor => {
                // Nearest neighbour to the East, wrapping at the edge
                // (dimension-wise ring addressing, standard NB definition).
                let c = self.tmesh.coord_of(src);
                let t = Coord {
                    x: (c.x + 1) % self.tmesh.width(),
                    y: c.y,
                };
                self.tmesh.node_at(t)
            }
            Pattern::Tornado => {
                // Half-way minus one around the X ring.
                let k = self.tmesh.width();
                let c = self.tmesh.coord_of(src);
                let t = Coord {
                    x: (c.x + (k / 2).saturating_sub(1).max(1)) % k,
                    y: c.y,
                };
                self.tmesh.node_at(t)
            }
        };
        if dst == src {
            None
        } else {
            Some(dst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import wins over both globs (proptest's prelude also exports
    // an `Rng` trait).
    use noc_core::Rng;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    fn bound(p: Pattern) -> BoundPattern {
        BoundPattern::new(p, mesh8(), 7)
    }

    #[test]
    fn abbrevs_roundtrip() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::from_abbrev(p.abbrev()), Some(p));
        }
        assert_eq!(Pattern::from_abbrev("XX"), None);
    }

    #[test]
    fn uniform_never_self() {
        let b = bound(Pattern::UniformRandom);
        let mut rng = Rng::seed_from(1);
        for i in 0..64u16 {
            for _ in 0..50 {
                let d = b.dest(NodeId(i), &mut rng).unwrap();
                assert_ne!(d, NodeId(i));
                assert!(d.index() < 64);
            }
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let b = bound(Pattern::UniformRandom);
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 64];
        for _ in 0..5000 {
            seen[b.dest(NodeId(0), &mut rng).unwrap().index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 63);
        assert!(!seen[0]);
    }

    #[test]
    fn nur_hotspots_receive_extra_traffic() {
        let b = bound(Pattern::NonUniformRandom);
        assert_eq!(b.hotspots().len(), 8);
        let mut rng = Rng::seed_from(5);
        let mut hot = 0usize;
        let trials = 40_000;
        for t in 0..trials {
            let src = NodeId((t % 64) as u16);
            if let Some(d) = b.dest(src, &mut rng) {
                if b.hotspots().contains(&d) {
                    hot += 1;
                }
            }
        }
        // Expected hot share ≈ baseline (8/64 = 12.5%) + redirected 20% of
        // traffic → ~30%. Uniform would give 12.5%.
        let share = hot as f64 / trials as f64;
        assert!(share > 0.22, "hot share {share}");
        assert!(share < 0.40, "hot share {share}");
    }

    #[test]
    fn bit_reversal_known_values() {
        let b = bound(Pattern::BitReversal);
        let mut rng = Rng::seed_from(0);
        // 6-bit reversal: 0b000001 -> 0b100000 (1 -> 32)
        assert_eq!(b.dest(NodeId(1), &mut rng), Some(NodeId(32)));
        // 0b000110 (6) -> 0b011000 (24)
        assert_eq!(b.dest(NodeId(6), &mut rng), Some(NodeId(24)));
        // palindrome maps to itself -> None: 0b100001 (33)
        assert_eq!(b.dest(NodeId(33), &mut rng), None);
    }

    #[test]
    fn butterfly_swaps_msb_lsb() {
        let b = bound(Pattern::Butterfly);
        let mut rng = Rng::seed_from(0);
        // 0b000001 -> 0b100000
        assert_eq!(b.dest(NodeId(1), &mut rng), Some(NodeId(32)));
        // 0b100110 (38): msb=1,lsb=0 -> 0b000111 (7)
        assert_eq!(b.dest(NodeId(38), &mut rng), Some(NodeId(7)));
        // equal msb/lsb fixed point: 0b100101 (37) msb=1 lsb=1 -> itself
        assert_eq!(b.dest(NodeId(37), &mut rng), None);
    }

    #[test]
    fn complement_is_involution_and_total() {
        let b = bound(Pattern::Complement);
        let mut rng = Rng::seed_from(0);
        for i in 0..64u16 {
            let d = b.dest(NodeId(i), &mut rng).expect("complement never self");
            assert_eq!(d.0, 63 - i);
            let back = b.dest(d, &mut rng).unwrap();
            assert_eq!(back, NodeId(i));
        }
    }

    #[test]
    fn transpose_mirrors_coords() {
        let m = mesh8();
        let b = bound(Pattern::MatrixTranspose);
        let mut rng = Rng::seed_from(0);
        let src = m.node_at(Coord { x: 2, y: 5 });
        let dst = b.dest(src, &mut rng).unwrap();
        assert_eq!(m.coord_of(dst), Coord { x: 5, y: 2 });
        // diagonal is a fixed point
        let diag = m.node_at(Coord { x: 3, y: 3 });
        assert_eq!(b.dest(diag, &mut rng), None);
    }

    #[test]
    fn perfect_shuffle_rotates_left() {
        let b = bound(Pattern::PerfectShuffle);
        let mut rng = Rng::seed_from(0);
        // 0b000011 (3) -> 0b000110 (6)
        assert_eq!(b.dest(NodeId(3), &mut rng), Some(NodeId(6)));
        // 0b100000 (32) -> 0b000001 (1)
        assert_eq!(b.dest(NodeId(32), &mut rng), Some(NodeId(1)));
        // all-zeros / all-ones are fixed points
        assert_eq!(b.dest(NodeId(0), &mut rng), None);
        assert_eq!(b.dest(NodeId(63), &mut rng), None);
    }

    #[test]
    fn neighbor_goes_one_east_with_wrap() {
        let m = mesh8();
        let b = bound(Pattern::Neighbor);
        let mut rng = Rng::seed_from(0);
        let src = m.node_at(Coord { x: 3, y: 1 });
        assert_eq!(b.dest(src, &mut rng), Some(m.node_at(Coord { x: 4, y: 1 })));
        let edge = m.node_at(Coord { x: 7, y: 2 });
        assert_eq!(
            b.dest(edge, &mut rng),
            Some(m.node_at(Coord { x: 0, y: 2 }))
        );
    }

    #[test]
    fn tornado_half_ring() {
        let m = mesh8();
        let b = bound(Pattern::Tornado);
        let mut rng = Rng::seed_from(0);
        // k=8: offset k/2-1 = 3
        let src = m.node_at(Coord { x: 1, y: 6 });
        assert_eq!(b.dest(src, &mut rng), Some(m.node_at(Coord { x: 4, y: 6 })));
    }

    #[test]
    fn deterministic_patterns_are_permutations_modulo_fixed_points() {
        for p in [
            Pattern::BitReversal,
            Pattern::Butterfly,
            Pattern::Complement,
            Pattern::MatrixTranspose,
            Pattern::PerfectShuffle,
            Pattern::Neighbor,
            Pattern::Tornado,
        ] {
            let b = bound(p);
            let mut rng = Rng::seed_from(0);
            let mut seen = std::collections::HashSet::new();
            for i in 0..64u16 {
                if let Some(d) = b.dest(NodeId(i), &mut rng) {
                    assert!(seen.insert(d), "{p:?} maps two sources to {d}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pow2_patterns_reject_odd_meshes() {
        let _ = BoundPattern::new(Pattern::BitReversal, Mesh::new(6, 6), 0);
    }

    #[test]
    fn cmesh_patterns_run_in_terminal_space() {
        // A 4x4 cmesh serves 64 terminals, so the pow2 patterns are legal
        // even though there are only 16 routers.
        let c = Mesh::cmesh(4, 4);
        let b = BoundPattern::new(Pattern::Complement, c, 7);
        let mut rng = Rng::seed_from(1);
        // Every terminal of router (0,0)'s 2x2 block complements into the
        // opposite corner block, i.e. router (3,3).
        for _ in 0..20 {
            let d = b.dest(NodeId(0), &mut rng).unwrap();
            assert_eq!(c.coord_of(d), Coord { x: 3, y: 3 });
        }
        // Uniform-random destinations stay on the 16 routers; same-router
        // terminal pairs fold to None (local delivery).
        let u = BoundPattern::new(Pattern::UniformRandom, c, 7);
        for i in 0..16u16 {
            for _ in 0..50 {
                if let Some(d) = u.dest(NodeId(i), &mut rng) {
                    assert!(d.index() < 16);
                    assert_ne!(d, NodeId(i));
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_dest_on_mesh_and_not_self(pi in 0usize..9, src in 0u16..64, seed in any::<u64>()) {
            let p = Pattern::ALL[pi];
            let b = BoundPattern::new(p, mesh8(), 7);
            let mut rng = Rng::seed_from(seed);
            if let Some(d) = b.dest(NodeId(src), &mut rng) {
                prop_assert!(d.index() < 64);
                prop_assert_ne!(d, NodeId(src));
            }
        }
    }
}

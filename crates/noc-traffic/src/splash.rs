//! Closed-loop SPLASH-2 coherence-workload model.
//!
//! The paper collected SPLASH-2 traces with Simics + GEMS (Tables I & II
//! give the processor and memory-hierarchy parameters). We do not have that
//! stack, so — per the substitution rule in DESIGN.md — we model the
//! *network-visible* behaviour of those runs:
//!
//! * 64 in-order cores, each with a 16-entry MSHR window: a core issues a
//!   new L2 request only while fewer than 16 are outstanding, so network
//!   latency directly throttles progress (this is what makes "execution
//!   time" sensitive to the router design, Fig. 9);
//! * each core owns a private L2 (Table II), so misses travel to one of 16
//!   directory/memory-controller nodes (odd-odd mesh coordinates); the
//!   directory either forwards the request to the current owner core
//!   (MESI cache-to-cache transfer — the owner then sends the 4-flit data
//!   reply, 64 B block / 128-bit flits) or fetches from memory and replies
//!   itself, after the Table II latencies (directory 80, memory 160,
//!   L2 hit 4 cycles). Reply sources are therefore spread over all 64
//!   nodes, as in the paper's GEMS traces;
//! * per-application parameters (issue intensity, home locality, L2 miss
//!   rate, transactions per core) differentiate the nine benchmarks.
//!
//! "Execution time" of a run is the cycle at which every core has completed
//! its transaction quota; Fig. 9 normalizes it per design.

use crate::generator::{DeliveredPacket, TrafficModel};
use noc_core::flit::{FlitKind, PacketDesc, PacketId};
use noc_core::types::{Cycle, NodeId};
use noc_core::Rng;
use noc_topology::{link::TimedChannel, Mesh};
use serde::{Deserialize, Serialize};

/// Table I — processor parameters used for the SPLASH-2 suite simulations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessorParams {
    pub frequency_ghz: u32,
    pub issue_width: u32,
    pub issue_order: &'static str,
    pub retire_order: &'static str,
    pub ld_st_units: u32,
    pub mul_div_units: u32,
    pub write_buffer_entries: u32,
    pub branch_predictor: &'static str,
    pub btb_entries: u32,
    pub ras_entries: u32,
    pub l1_size_kb: u32,
    pub l1_assoc: u32,
    pub l1_latency_cycles: u32,
    pub l1_block_bytes: u32,
}

impl Default for ProcessorParams {
    fn default() -> Self {
        ProcessorParams {
            frequency_ghz: 3,
            issue_width: 2,
            issue_order: "in-order",
            retire_order: "in-order",
            ld_st_units: 1,
            mul_div_units: 1,
            write_buffer_entries: 16,
            branch_predictor: "13-bit GHR hybrid GAg+SAg",
            btb_entries: 2048,
            ras_entries: 32,
            l1_size_kb: 64,
            l1_assoc: 4,
            l1_latency_cycles: 2,
            l1_block_bytes: 64,
        }
    }
}

/// Table II — cache and memory parameters used for the SPLASH-2 suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryParams {
    pub l2_banks: u32,
    pub l2_size_mb: u32,
    pub l2_assoc: u32,
    pub l2_latency_cycles: u64,
    pub l2_writeback: &'static str,
    pub block_bytes: u32,
    pub mshr_entries: usize,
    pub coherence: &'static str,
    pub memory_controllers: u32,
    pub memory_size_gb: u32,
    pub memory_latency_cycles: u64,
    pub directory_latency_cycles: u64,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            l2_banks: 16,
            l2_size_mb: 1,
            l2_assoc: 16,
            l2_latency_cycles: 4,
            l2_writeback: "write-back",
            block_bytes: 64,
            mshr_entries: 16,
            coherence: "MESI",
            memory_controllers: 16,
            memory_size_gb: 4,
            memory_latency_cycles: 160,
            directory_latency_cycles: 80,
        }
    }
}

/// The nine SPLASH-2 applications (with the paper's input sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplashApp {
    /// FFT (16 K points) — all-to-all transpose phases.
    Fft,
    /// LU (512x512) — blocked, mostly neighbour communication.
    Lu,
    /// Radiosity (largeroom) — irregular task-stealing traffic.
    Radiosity,
    /// Ocean (258x258) — intense nearest-neighbour stencils.
    Ocean,
    /// Raytrace (teapot) — read-mostly irregular sharing.
    Raytrace,
    /// Radix (1 M keys) — permutation-heavy, highest injection rate.
    Radix,
    /// Water (512 molecules) — low, regular traffic.
    Water,
    /// FMM (16 K particles) — tree-structured moderate traffic.
    Fmm,
    /// Barnes (16 K particles) — tree-structured moderate traffic.
    Barnes,
}

/// Per-application workload parameters (the substitution's knobs).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppParams {
    /// Probability per core per cycle of wanting a new L2 request while
    /// under the MSHR limit (network intensity of the benchmark).
    pub issue_prob: f64,
    /// Probability that a request targets one of the 4 nearest L2 banks
    /// instead of a uniformly random bank.
    pub locality: f64,
    /// Probability that a miss must go to memory instead of being served
    /// by a cache-to-cache transfer from the owner's private L2.
    pub l2_miss_rate: f64,
    /// Transactions each core must complete.
    pub txns_per_core: u32,
    /// Requests issued back-to-back to the same home bank once the issue
    /// coin fires (cache-line streaming / coherence bursts). Bursty
    /// many-to-one traffic is what makes deflection and drop storms appear
    /// in the bufferless designs on real traces.
    pub burst_len: u32,
}

impl SplashApp {
    /// The nine applications in the paper's plotting order.
    pub const ALL: [SplashApp; 9] = [
        SplashApp::Fft,
        SplashApp::Lu,
        SplashApp::Radiosity,
        SplashApp::Ocean,
        SplashApp::Raytrace,
        SplashApp::Radix,
        SplashApp::Water,
        SplashApp::Fmm,
        SplashApp::Barnes,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SplashApp::Fft => "FFT",
            SplashApp::Lu => "LU",
            SplashApp::Radiosity => "Radiosity",
            SplashApp::Ocean => "Ocean",
            SplashApp::Raytrace => "Raytrace",
            SplashApp::Radix => "Radix",
            SplashApp::Water => "Water",
            SplashApp::Fmm => "FMM",
            SplashApp::Barnes => "Barnes",
        }
    }

    /// Workload parameters for the application. Intensities are ordered to
    /// match SPLASH-2's published communication characteristics: Radix and
    /// Ocean stress the network, Water and Raytrace barely load it.
    pub fn params(self) -> AppParams {
        match self {
            SplashApp::Fft => AppParams {
                issue_prob: 0.060,
                locality: 0.20,
                l2_miss_rate: 0.10,
                txns_per_core: 400,
                burst_len: 8,
            },
            SplashApp::Lu => AppParams {
                issue_prob: 0.050,
                locality: 0.60,
                l2_miss_rate: 0.06,
                txns_per_core: 400,
                burst_len: 4,
            },
            SplashApp::Radiosity => AppParams {
                issue_prob: 0.030,
                locality: 0.40,
                l2_miss_rate: 0.05,
                txns_per_core: 300,
                burst_len: 3,
            },
            SplashApp::Ocean => AppParams {
                issue_prob: 0.120,
                locality: 0.70,
                l2_miss_rate: 0.12,
                txns_per_core: 500,
                burst_len: 8,
            },
            SplashApp::Raytrace => AppParams {
                issue_prob: 0.025,
                locality: 0.30,
                l2_miss_rate: 0.08,
                txns_per_core: 300,
                burst_len: 2,
            },
            SplashApp::Radix => AppParams {
                issue_prob: 0.150,
                locality: 0.15,
                l2_miss_rate: 0.15,
                txns_per_core: 500,
                burst_len: 10,
            },
            SplashApp::Water => AppParams {
                issue_prob: 0.020,
                locality: 0.50,
                l2_miss_rate: 0.04,
                txns_per_core: 300,
                burst_len: 2,
            },
            SplashApp::Fmm => AppParams {
                issue_prob: 0.050,
                locality: 0.35,
                l2_miss_rate: 0.07,
                txns_per_core: 350,
                burst_len: 4,
            },
            SplashApp::Barnes => AppParams {
                issue_prob: 0.060,
                locality: 0.30,
                l2_miss_rate: 0.08,
                txns_per_core: 350,
                burst_len: 4,
            },
        }
    }
}

/// Per-core progress state.
#[derive(Debug, Clone)]
struct CoreState {
    /// Transactions not yet issued.
    to_issue: u32,
    /// Requests in flight (MSHR occupancy).
    outstanding: usize,
    /// Transactions completed (data reply received).
    completed: u32,
    rng: Rng,
    /// The four nearest L2 banks, precomputed.
    near_banks: [NodeId; 4],
    /// Remaining requests of the current burst and their home bank.
    burst: u32,
    burst_home: NodeId,
}

/// Closed-loop SPLASH-2 traffic model (see module docs).
pub struct SplashTraffic {
    app: SplashApp,
    params: AppParams,
    mem: MemoryParams,
    banks: Vec<NodeId>,
    cores: Vec<CoreState>,
    num_cores: usize,
    /// Protocol actions waiting out a service latency.
    pending: TimedChannel<PendingOp>,
    pending_count: usize,
    /// Requestor of each in-flight directory->owner forward packet.
    forward_requestor: std::collections::HashMap<PacketId, NodeId>,
    next_seq: u64,
    data_flits: u8,
}

/// A protocol action scheduled after a service latency.
#[derive(Debug, Clone, Copy)]
enum PendingOp {
    /// Directory forwards the request to the owner core.
    Forward {
        directory: NodeId,
        owner: NodeId,
        requestor: NodeId,
    },
    /// `from` sends the 4-flit data block to `requestor` (either the owner
    /// core after a cache-to-cache transfer or the directory after memory).
    Data { from: NodeId, requestor: NodeId },
}

impl SplashTraffic {
    /// Workload with the application's standard parameters.
    pub fn new(app: SplashApp, mesh: Mesh, seed: u64) -> SplashTraffic {
        SplashTraffic::with_params(app, app.params(), mesh, seed)
    }

    /// Workload with custom parameters (scaled-down test runs, ablations).
    pub fn with_params(app: SplashApp, params: AppParams, mesh: Mesh, seed: u64) -> SplashTraffic {
        let mem = MemoryParams::default();
        let banks = bank_nodes(&mesh);
        assert!(!banks.is_empty());
        let cores: Vec<CoreState> = (0..mesh.num_nodes())
            .map(|i| {
                let node = NodeId(i as u16);
                let mut by_dist: Vec<NodeId> = banks.clone();
                by_dist.sort_by_key(|&b| (mesh.hop_distance(node, b), b.0));
                CoreState {
                    to_issue: params.txns_per_core,
                    outstanding: 0,
                    completed: 0,
                    rng: Rng::stream(seed, 0x59A5 ^ i as u64),
                    near_banks: [
                        by_dist[0],
                        by_dist[1.min(by_dist.len() - 1)],
                        by_dist[2.min(by_dist.len() - 1)],
                        by_dist[3.min(by_dist.len() - 1)],
                    ],
                    burst: 0,
                    burst_home: NodeId(0),
                }
            })
            .collect();
        // 64-byte block over 128-bit flits = 4 data flits.
        let data_flits = (mem.block_bytes * 8 / 128).max(1) as u8;
        let num_cores = cores.len();
        SplashTraffic {
            app,
            params,
            mem,
            banks,
            cores,
            num_cores,
            pending: TimedChannel::new(),
            pending_count: 0,
            forward_requestor: std::collections::HashMap::new(),
            next_seq: 0,
            data_flits,
        }
    }

    fn next_id(&mut self) -> PacketId {
        let id = PacketId(self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Total transactions completed so far across all cores.
    pub fn completed(&self) -> u64 {
        self.cores.iter().map(|c| c.completed as u64).sum()
    }

    /// Total transactions each run must complete.
    pub fn total_txns(&self) -> u64 {
        self.params.txns_per_core as u64 * self.cores.len() as u64
    }

    /// The L2 bank nodes.
    pub fn banks(&self) -> &[NodeId] {
        &self.banks
    }

    pub fn app(&self) -> SplashApp {
        self.app
    }
}

/// L2 banks live at the odd-odd coordinates (16 banks on an 8x8 mesh),
/// evenly spreading reply traffic.
pub fn bank_nodes(mesh: &Mesh) -> Vec<NodeId> {
    mesh.nodes()
        .filter(|&n| {
            let c = mesh.coord_of(n);
            c.x % 2 == 1 && c.y % 2 == 1
        })
        .collect()
}

impl TrafficModel for SplashTraffic {
    fn poll(&mut self, cycle: Cycle) -> Vec<PacketDesc> {
        let mut out = Vec::new();

        // Due protocol actions become packets.
        for op in self.pending.recv_due(cycle) {
            self.pending_count -= 1;
            match op {
                PendingOp::Forward {
                    directory,
                    owner,
                    requestor,
                } => {
                    let id = self.next_id();
                    self.forward_requestor.insert(id, requestor);
                    out.push(PacketDesc {
                        id,
                        src: directory,
                        dst: owner,
                        len: 1,
                        created: cycle,
                        kind: FlitKind::Forward,
                    });
                }
                PendingOp::Data { from, requestor } => {
                    let id = self.next_id();
                    out.push(PacketDesc {
                        id,
                        src: from,
                        dst: requestor,
                        len: self.data_flits,
                        created: cycle,
                        kind: FlitKind::Data,
                    });
                }
            }
        }

        // Cores issue new requests under the MSHR window. Issue is bursty:
        // once the coin fires, `burst_len` back-to-back requests stream to
        // the same home bank (one per cycle while the MSHR allows).
        let mshr = self.mem.mshr_entries;
        for i in 0..self.cores.len() {
            let core = &mut self.cores[i];
            if core.to_issue == 0 || core.outstanding >= mshr {
                continue;
            }
            if core.burst == 0 {
                if !core.rng.gen_bool(self.params.issue_prob) {
                    continue;
                }
                let src = NodeId(i as u16);
                let home = if core.rng.gen_bool(self.params.locality) {
                    core.near_banks[core.rng.gen_index(4)]
                } else {
                    self.banks[core.rng.gen_index(self.banks.len())]
                };
                // A bank node's own requests to itself would not use the
                // network; redirect to a random other bank.
                core.burst_home = if home == src {
                    self.banks[(self.banks.iter().position(|&b| b == src).unwrap() + 1)
                        % self.banks.len()]
                } else {
                    home
                };
                core.burst = self.params.burst_len.max(1);
            }
            core.burst -= 1;
            let src = NodeId(i as u16);
            let home = core.burst_home;
            core.to_issue -= 1;
            core.outstanding += 1;
            let id = self.next_id();
            out.push(PacketDesc {
                id,
                src,
                dst: home,
                len: 1,
                created: cycle,
                kind: FlitKind::Request,
            });
        }
        out
    }

    fn on_delivered(&mut self, d: &DeliveredPacket) {
        match d.kind {
            FlitKind::Request => {
                // The directory looks up the block. Most misses are served
                // by a cache-to-cache transfer from the owner's private L2;
                // the rest go to memory and the directory replies itself.
                let directory = d.dst;
                let requestor = d.src;
                let rng = &mut self.cores[requestor.index()].rng;
                let memory = rng.gen_bool(self.params.l2_miss_rate);
                if memory {
                    let service =
                        self.mem.directory_latency_cycles + self.mem.memory_latency_cycles;
                    self.pending.send(
                        d.delivered,
                        service.max(1),
                        PendingOp::Data {
                            from: directory,
                            requestor,
                        },
                    );
                } else {
                    // Pick the owner core: with `locality`, a neighbour of
                    // the requestor (producer-consumer sharing); otherwise
                    // any other core.
                    let n = self.num_cores;
                    let owner = if rng.gen_bool(self.params.locality) {
                        let delta = [1, n - 1, 8 % n, n - 8 % n][rng.gen_index(4)];
                        NodeId(((requestor.index() + delta) % n) as u16)
                    } else {
                        let mut o = rng.gen_index(n - 1);
                        if o >= requestor.index() {
                            o += 1;
                        }
                        NodeId(o as u16)
                    };
                    let owner = if owner == requestor {
                        NodeId(((owner.index() + 1) % n) as u16)
                    } else {
                        owner
                    };
                    if owner == directory {
                        // The directory node's own core owns the block: the
                        // forward is router-local, so only the data reply
                        // crosses the network.
                        let service =
                            self.mem.directory_latency_cycles + self.mem.l2_latency_cycles;
                        self.pending.send(
                            d.delivered,
                            service.max(1),
                            PendingOp::Data {
                                from: owner,
                                requestor,
                            },
                        );
                    } else {
                        self.pending.send(
                            d.delivered,
                            self.mem.directory_latency_cycles.max(1),
                            PendingOp::Forward {
                                directory,
                                owner,
                                requestor,
                            },
                        );
                    }
                }
                self.pending_count += 1;
            }
            FlitKind::Forward => {
                // The owner's private L2 serves the block after a hit
                // latency.
                let owner = d.dst;
                let requestor = self
                    .forward_requestor
                    .remove(&d.id)
                    .expect("forward without recorded requestor");
                self.pending.send(
                    d.delivered,
                    self.mem.l2_latency_cycles.max(1),
                    PendingOp::Data {
                        from: owner,
                        requestor,
                    },
                );
                self.pending_count += 1;
            }
            FlitKind::Data => {
                let core = &mut self.cores[d.dst.index()];
                debug_assert!(core.outstanding > 0, "reply without outstanding request");
                core.outstanding = core.outstanding.saturating_sub(1);
                core.completed += 1;
            }
            FlitKind::Synthetic => {}
        }
    }

    fn finished(&self) -> bool {
        self.pending_count == 0
            && self.forward_requestor.is_empty()
            && self
                .cores
                .iter()
                .all(|c| c.to_issue == 0 && c.outstanding == 0)
    }

    fn lossless(&self) -> bool {
        true // every request/reply must eventually deliver or cores stall
    }

    fn label(&self) -> String {
        format!("SPLASH-2 {}", self.app.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn sixteen_banks_on_8x8() {
        let banks = bank_nodes(&mesh8());
        assert_eq!(banks.len(), 16);
        for b in banks {
            let c = mesh8().coord_of(b);
            assert_eq!(c.x % 2, 1);
            assert_eq!(c.y % 2, 1);
        }
    }

    #[test]
    fn tables_match_paper_values() {
        let p = ProcessorParams::default();
        assert_eq!(p.frequency_ghz, 3);
        assert_eq!(p.l1_size_kb, 64);
        assert_eq!(p.write_buffer_entries, 16);
        let m = MemoryParams::default();
        assert_eq!(m.l2_banks, 16);
        assert_eq!(m.l2_latency_cycles, 4);
        assert_eq!(m.memory_latency_cycles, 160);
        assert_eq!(m.directory_latency_cycles, 80);
        assert_eq!(m.mshr_entries, 16);
        assert_eq!(m.coherence, "MESI");
    }

    #[test]
    fn all_apps_have_distinct_params() {
        let mut intensities: Vec<u64> = SplashApp::ALL
            .iter()
            .map(|a| (a.params().issue_prob * 1e6) as u64)
            .collect();
        intensities.sort_unstable();
        // Radix is the most intense, Water the least.
        assert_eq!(
            SplashApp::Radix.params().issue_prob,
            *intensities
                .last()
                .map(|&v| v as f64 / 1e6)
                .as_ref()
                .unwrap()
        );
        assert_eq!(
            SplashApp::Water.params().issue_prob,
            intensities[0] as f64 / 1e6
        );
    }

    #[test]
    fn requests_target_banks_only() {
        let mut t = SplashTraffic::new(SplashApp::Ocean, mesh8(), 3);
        let banks = t.banks().to_vec();
        for c in 0..200 {
            for p in t.poll(c) {
                assert_eq!(p.kind, FlitKind::Request);
                assert!(banks.contains(&p.dst), "{} not a bank", p.dst);
                assert_ne!(p.src, p.dst);
                assert_eq!(p.len, 1);
            }
        }
    }

    #[test]
    fn mshr_window_limits_outstanding() {
        let mut t = SplashTraffic::new(SplashApp::Radix, mesh8(), 3);
        // Never deliver anything: every core saturates at 16 outstanding.
        for c in 0..2000 {
            let _ = t.poll(c);
        }
        for core in &t.cores {
            assert!(core.outstanding <= 16);
        }
        let stuck: usize = t.cores.iter().map(|c| c.outstanding).sum();
        assert_eq!(stuck, 64 * 16, "all cores should fill their MSHRs");
        // No forward progress possible -> more polls add nothing.
        assert!(t.poll(5000).is_empty());
    }

    #[test]
    fn request_reply_cycle_completes_transactions() {
        let mesh = mesh8();
        let mut t = SplashTraffic::new(SplashApp::Water, mesh, 5);
        let mut cycle = 0u64;
        let mut in_flight: Vec<PacketDesc> = Vec::new();
        // Ideal zero-latency network: deliver every packet 1 cycle later.
        while !t.finished() && cycle < 2_000_000 {
            for p in t.poll(cycle) {
                in_flight.push(p);
            }
            let deliver: Vec<PacketDesc> = std::mem::take(&mut in_flight);
            for p in deliver {
                t.on_delivered(&DeliveredPacket {
                    id: p.id,
                    src: p.src,
                    dst: p.dst,
                    kind: p.kind,
                    created: p.created,
                    delivered: cycle + 1,
                });
            }
            cycle += 1;
        }
        assert!(t.finished(), "workload did not finish");
        assert_eq!(t.completed(), t.total_txns());
    }

    #[test]
    fn data_replies_are_four_flits() {
        let mesh = mesh8();
        let mut t = SplashTraffic::new(SplashApp::Fft, mesh, 5);
        assert_eq!(t.data_flits, 4);
        // Drive one request through and look at the reply.
        let reqs = loop {
            let r = t.poll(0);
            if !r.is_empty() {
                break r;
            }
        };
        let req = reqs[0];
        t.on_delivered(&DeliveredPacket {
            id: req.id,
            src: req.src,
            dst: req.dst,
            kind: FlitKind::Request,
            created: 0,
            delivered: 10,
        });
        // Deliver any directory->owner forward instantly; the data block
        // must then follow (either from the owner or from the directory
        // after the memory path).
        let mut forward_src = None;
        let mut found = None;
        for c in 11..3000 {
            for p in t.poll(c) {
                match p.kind {
                    FlitKind::Forward => {
                        assert_eq!(p.src, req.dst, "forward leaves the directory");
                        assert_eq!(p.len, 1);
                        forward_src = Some(p.dst);
                        t.on_delivered(&DeliveredPacket {
                            id: p.id,
                            src: p.src,
                            dst: p.dst,
                            kind: FlitKind::Forward,
                            created: p.created,
                            delivered: c,
                        });
                    }
                    FlitKind::Data => found = Some(p),
                    _ => {}
                }
            }
            if found.is_some() {
                break;
            }
        }
        let reply = found.expect("no reply generated");
        assert_eq!(reply.len, 4);
        // Cache-to-cache replies come from the owner; memory replies from
        // the directory itself.
        match forward_src {
            Some(owner) => assert_eq!(reply.src, owner),
            None => assert_eq!(reply.src, req.dst),
        }
        assert_eq!(reply.dst, req.src);
    }

    #[test]
    fn forwards_spread_reply_sources_across_cores() {
        // With private L2s most replies are cache-to-cache: drive many
        // transactions through an ideal network and check that data packets
        // originate from many distinct nodes, not just the 16 directories.
        let mesh = mesh8();
        let mut t = SplashTraffic::new(SplashApp::Fft, mesh, 11);
        let mut sources = std::collections::HashSet::new();
        let mut in_flight: Vec<PacketDesc> = Vec::new();
        for cycle in 0..30_000u64 {
            for p in t.poll(cycle) {
                if p.kind == FlitKind::Data {
                    sources.insert(p.src);
                }
                in_flight.push(p);
            }
            for p in in_flight.drain(..) {
                t.on_delivered(&DeliveredPacket {
                    id: p.id,
                    src: p.src,
                    dst: p.dst,
                    kind: p.kind,
                    created: p.created,
                    delivered: cycle + 1,
                });
            }
            if t.finished() {
                break;
            }
        }
        assert!(
            sources.len() > 32,
            "reply sources too concentrated: {} nodes",
            sources.len()
        );
    }

    #[test]
    fn bursts_stream_to_one_home() {
        // Once a burst starts, its requests go back-to-back to the same
        // home bank (the paper-era coherence streams our model imitates).
        let mut t = SplashTraffic::new(SplashApp::Radix, mesh8(), 7); // burst_len 10
        let mut per_core_homes: std::collections::HashMap<u16, Vec<NodeId>> = Default::default();
        for c in 0..50 {
            for p in t.poll(c) {
                per_core_homes.entry(p.src.0).or_default().push(p.dst);
            }
        }
        // Within the first burst_len requests of any core, the home is
        // constant.
        let burst = SplashApp::Radix.params().burst_len as usize;
        let mut checked = 0;
        for homes in per_core_homes.values() {
            if homes.len() >= burst {
                let first = homes[0];
                assert!(
                    homes[..burst].iter().all(|&h| h == first),
                    "burst split homes"
                );
                checked += 1;
            }
        }
        assert!(checked > 5, "too few bursts observed ({checked})");
    }

    #[test]
    fn label_mentions_app() {
        let t = SplashTraffic::new(SplashApp::Barnes, mesh8(), 1);
        assert_eq!(t.label(), "SPLASH-2 Barnes");
    }
}

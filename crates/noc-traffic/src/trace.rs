//! Packet-trace recording and replay.
//!
//! Any [`TrafficModel`] can be captured into a [`Trace`] (a sorted list of
//! packet descriptors) and replayed open-loop later. This is how we persist
//! workloads for regression tests and how a user can feed externally
//! produced traces (e.g. from a real full-system simulator) into the
//! simulator.

use crate::generator::TrafficModel;
use noc_core::flit::PacketDesc;
use noc_core::types::Cycle;
use serde::{Deserialize, Serialize};

/// A recorded traffic trace: packets sorted by creation cycle.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub label: String,
    pub packets: Vec<PacketDesc>,
}

impl Trace {
    /// Capture the first `cycles` cycles of a model's open-loop output.
    /// (Closed-loop models can be captured too, but without deliveries they
    /// only show their MSHR-limited prefix.)
    pub fn capture<M: TrafficModel>(model: &mut M, cycles: Cycle) -> Trace {
        let mut packets = Vec::new();
        for c in 0..cycles {
            packets.extend(model.poll(c));
        }
        Trace {
            label: model.label(),
            packets,
        }
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Verify creation cycles are non-decreasing (required for replay).
    pub fn is_sorted(&self) -> bool {
        self.packets
            .windows(2)
            .all(|w| w[0].created <= w[1].created)
    }
}

/// Open-loop replay of a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    next: usize,
}

impl TraceReplay {
    pub fn new(trace: Trace) -> TraceReplay {
        assert!(trace.is_sorted(), "trace must be sorted by creation cycle");
        TraceReplay { trace, next: 0 }
    }

    /// Packets not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }
}

impl TrafficModel for TraceReplay {
    fn poll(&mut self, cycle: Cycle) -> Vec<PacketDesc> {
        let mut out = Vec::new();
        while self.next < self.trace.packets.len() && self.trace.packets[self.next].created <= cycle
        {
            let mut p = self.trace.packets[self.next];
            // Late replay (engine started past the stamp) re-stamps at the
            // current cycle so latency accounting stays meaningful.
            p.created = p.created.max(cycle.min(p.created));
            out.push(p);
            self.next += 1;
        }
        out
    }

    fn finished(&self) -> bool {
        self.next == self.trace.packets.len()
    }

    fn lossless(&self) -> bool {
        true // replays are finite; closed-loop runs count on full delivery
    }

    fn label(&self) -> String {
        format!("replay:{}", self.trace.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticTraffic;
    use crate::patterns::Pattern;
    use noc_topology::Mesh;

    fn captured() -> Trace {
        let mut m = SyntheticTraffic::new(Pattern::UniformRandom, Mesh::new(4, 4), 0.3, 1, 9);
        Trace::capture(&mut m, 50)
    }

    #[test]
    fn capture_is_sorted_and_nonempty() {
        let t = captured();
        assert!(!t.is_empty());
        assert!(t.is_sorted());
        assert!(t.label.contains("UR"));
    }

    #[test]
    fn replay_reproduces_capture() {
        let t = captured();
        let mut r = TraceReplay::new(t.clone());
        let mut replayed = Vec::new();
        for c in 0..50 {
            replayed.extend(r.poll(c));
        }
        assert!(r.finished());
        assert_eq!(r.remaining(), 0);
        assert_eq!(replayed, t.packets);
    }

    #[test]
    fn replay_delivers_everything_even_with_gaps() {
        let t = captured();
        let n = t.len();
        let mut r = TraceReplay::new(t);
        // Poll only every 7th cycle; backlog must still drain.
        let mut total = 0;
        for c in (0..100).step_by(7) {
            total += r.poll(c).len();
        }
        assert_eq!(total, n);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let r = TraceReplay::new(Trace::default());
        assert!(r.finished());
    }
}

//! Replay-hash determinism: the exact injection stream each (pattern,
//! seed) pair produces is part of the experiment contract — campaign
//! cache keys and the golden verify hashes both assume a generator
//! rebuilt from the same seed replays bit-identically. These tests pin
//! an FNV-1a digest of the full stream per pattern across two seeds, so
//! any accidental change to the RNG streams, pattern maps, or packet
//! numbering shows up as a hash diff here rather than as a silently
//! invalidated result cache.
//!
//! Re-blessing: when the stream changes *on purpose*, run with
//! `DXBAR_PRINT_HASHES=1` and paste the printed table over `GOLDEN`.

use noc_topology::Mesh;
use noc_traffic::{BurstSource, BurstyTraffic, Pattern, SyntheticTraffic, TrafficModel};

/// FNV-1a 64 (same constants as noc-campaign's cache hash; local copy
/// because noc-traffic sits below noc-campaign in the crate DAG).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const CYCLES: u64 = 400;
const SEEDS: [u64; 2] = [1, 42];

fn digest_stream(traffic: &mut dyn TrafficModel) -> u64 {
    let mut stream = Vec::new();
    for cycle in 0..CYCLES {
        for p in traffic.poll(cycle) {
            stream.extend_from_slice(&p.id.0.to_le_bytes());
            stream.extend_from_slice(&p.src.0.to_le_bytes());
            stream.extend_from_slice(&p.dst.0.to_le_bytes());
            stream.extend_from_slice(&p.created.to_le_bytes());
            stream.push(p.len);
        }
    }
    fnv1a64(&stream)
}

/// Digest of every packet the generator creates in `CYCLES` cycles on an
/// 8x8 mesh (power of two, so the bit-permutation patterns are legal).
fn replay_hash(pattern: Pattern, seed: u64) -> u64 {
    let mut traffic = SyntheticTraffic::new(pattern, Mesh::new(8, 8), 0.2, 2, seed);
    digest_stream(&mut traffic)
}

/// Same digest for the bursty generator (UR spatial pattern, so every
/// process firing becomes a packet).
fn bursty_replay_hash(source: BurstSource, seed: u64) -> u64 {
    let mut traffic = BurstyTraffic::new(
        Pattern::UniformRandom,
        Mesh::new(8, 8),
        source,
        0.2,
        2,
        seed,
    );
    digest_stream(&mut traffic)
}

/// Pinned digests: one row per pattern, one column per seed in `SEEDS`.
const GOLDEN: [(Pattern, [u64; 2]); 9] = [
    (
        Pattern::UniformRandom,
        [0x8b639c28cac58c2d, 0x71fca3800241bf16],
    ),
    (
        Pattern::NonUniformRandom,
        [0x0269f78898c7e647, 0xc67e40d5559914d9],
    ),
    (
        Pattern::BitReversal,
        [0xe9dc0097582233b7, 0x16813ccb5f1252f9],
    ),
    (Pattern::Butterfly, [0x24b8c77ed1b17aaf, 0x7545df856a42fd52]),
    (
        Pattern::Complement,
        [0x5d0799e361e98a02, 0xacb5ecefef4f8ff0],
    ),
    (
        Pattern::MatrixTranspose,
        [0xac23585cf128da33, 0xf8d5688508145279],
    ),
    (
        Pattern::PerfectShuffle,
        [0x81be69c38b3477c2, 0x6b0601b7dfb14698],
    ),
    (Pattern::Neighbor, [0x81859ca6e1f8ca9a, 0x88def25ce8865ce4]),
    (Pattern::Tornado, [0x157de1c164ab61da, 0xe29fc41a6ab4422a]),
];

/// The bursty sources pinned alongside the patterns: each (source, seed)
/// stream is part of the same experiment contract.
const BURSTY_SOURCES: [BurstSource; 3] = [
    BurstSource::Bernoulli,
    BurstSource::Mmpp2 { burstiness: 3.0 },
    BurstSource::ParetoOnOff { duty: 0.25 },
];

/// Pinned digests for the bursty generator, same seed columns.
const BURSTY_GOLDEN: [[u64; 2]; 3] = [
    [0x1aee9e344025b828, 0x9f00ec48b4985eef], // bernoulli
    [0xa9a2eeea0942a234, 0xef18c5ff87d1ead7], // mmpp:3.000
    [0xa49b50dc3bfd0d8d, 0xb62afc60607089db], // pareto:0.250
];

#[test]
fn replay_hashes_match_golden_table() {
    if std::env::var("DXBAR_PRINT_HASHES").is_ok() {
        for p in Pattern::ALL {
            let hs: Vec<String> = SEEDS
                .iter()
                .map(|&s| format!("0x{:016x}", replay_hash(p, s)))
                .collect();
            println!("    (Pattern::{p:?}, [{}]),", hs.join(", "));
        }
        for src in BURSTY_SOURCES {
            let hs: Vec<String> = SEEDS
                .iter()
                .map(|&s| format!("0x{:016x}", bursty_replay_hash(src, s)))
                .collect();
            println!("    [{}], // {}", hs.join(", "), src.name());
        }
        return;
    }
    assert_eq!(GOLDEN.len(), Pattern::ALL.len(), "cover every pattern");
    for (pattern, want) in GOLDEN {
        for (i, &seed) in SEEDS.iter().enumerate() {
            let got = replay_hash(pattern, seed);
            assert_eq!(
                got, want[i],
                "{pattern:?} seed {seed}: replay hash drifted \
                 (got 0x{got:016x}); the injection stream changed"
            );
        }
    }
}

#[test]
fn bursty_replay_hashes_match_golden_table() {
    if std::env::var("DXBAR_PRINT_HASHES").is_ok() {
        return; // table printed by replay_hashes_match_golden_table
    }
    for (row, source) in BURSTY_SOURCES.into_iter().enumerate() {
        for (i, &seed) in SEEDS.iter().enumerate() {
            let got = bursty_replay_hash(source, seed);
            let want = BURSTY_GOLDEN[row][i];
            assert_eq!(
                got,
                want,
                "{} seed {seed}: replay hash drifted (got 0x{got:016x}); \
                 the bursty injection stream changed",
                source.name()
            );
        }
    }
}

#[test]
fn rebuilt_generator_replays_identically() {
    for pattern in Pattern::ALL {
        assert_eq!(
            replay_hash(pattern, 7),
            replay_hash(pattern, 7),
            "{pattern:?} not reproducible from its seed"
        );
    }
    for source in BURSTY_SOURCES {
        assert_eq!(
            bursty_replay_hash(source, 7),
            bursty_replay_hash(source, 7),
            "{} not reproducible from its seed",
            source.name()
        );
    }
}

#[test]
fn seeds_decorrelate_the_stream() {
    // Different seeds must give different streams: the Bernoulli coins
    // alone guarantee it for every pattern, deterministic or not.
    for pattern in Pattern::ALL {
        assert_ne!(
            replay_hash(pattern, SEEDS[0]),
            replay_hash(pattern, SEEDS[1]),
            "{pattern:?} ignored its seed"
        );
    }
}

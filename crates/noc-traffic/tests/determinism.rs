//! Replay-hash determinism: the exact injection stream each (pattern,
//! seed) pair produces is part of the experiment contract — campaign
//! cache keys and the golden verify hashes both assume a generator
//! rebuilt from the same seed replays bit-identically. These tests pin
//! an FNV-1a digest of the full stream per pattern across two seeds, so
//! any accidental change to the RNG streams, pattern maps, or packet
//! numbering shows up as a hash diff here rather than as a silently
//! invalidated result cache.
//!
//! Re-blessing: when the stream changes *on purpose*, run with
//! `DXBAR_PRINT_HASHES=1` and paste the printed table over `GOLDEN`.

use noc_topology::Mesh;
use noc_traffic::{Pattern, SyntheticTraffic, TrafficModel};

/// FNV-1a 64 (same constants as noc-campaign's cache hash; local copy
/// because noc-traffic sits below noc-campaign in the crate DAG).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const CYCLES: u64 = 400;
const SEEDS: [u64; 2] = [1, 42];

/// Digest of every packet the generator creates in `CYCLES` cycles on an
/// 8x8 mesh (power of two, so the bit-permutation patterns are legal).
fn replay_hash(pattern: Pattern, seed: u64) -> u64 {
    let mesh = Mesh::new(8, 8);
    let mut traffic = SyntheticTraffic::new(pattern, mesh, 0.2, 2, seed);
    let mut stream = Vec::new();
    for cycle in 0..CYCLES {
        for p in traffic.poll(cycle) {
            stream.extend_from_slice(&p.id.0.to_le_bytes());
            stream.extend_from_slice(&p.src.0.to_le_bytes());
            stream.extend_from_slice(&p.dst.0.to_le_bytes());
            stream.extend_from_slice(&p.created.to_le_bytes());
            stream.push(p.len);
        }
    }
    fnv1a64(&stream)
}

/// Pinned digests: one row per pattern, one column per seed in `SEEDS`.
const GOLDEN: [(Pattern, [u64; 2]); 9] = [
    (
        Pattern::UniformRandom,
        [0x8b639c28cac58c2d, 0x71fca3800241bf16],
    ),
    (
        Pattern::NonUniformRandom,
        [0x0269f78898c7e647, 0xc67e40d5559914d9],
    ),
    (
        Pattern::BitReversal,
        [0xe9dc0097582233b7, 0x16813ccb5f1252f9],
    ),
    (Pattern::Butterfly, [0x24b8c77ed1b17aaf, 0x7545df856a42fd52]),
    (
        Pattern::Complement,
        [0x5d0799e361e98a02, 0xacb5ecefef4f8ff0],
    ),
    (
        Pattern::MatrixTranspose,
        [0xac23585cf128da33, 0xf8d5688508145279],
    ),
    (
        Pattern::PerfectShuffle,
        [0x81be69c38b3477c2, 0x6b0601b7dfb14698],
    ),
    (Pattern::Neighbor, [0x81859ca6e1f8ca9a, 0x88def25ce8865ce4]),
    (Pattern::Tornado, [0x157de1c164ab61da, 0xe29fc41a6ab4422a]),
];

#[test]
fn replay_hashes_match_golden_table() {
    if std::env::var("DXBAR_PRINT_HASHES").is_ok() {
        for p in Pattern::ALL {
            let hs: Vec<String> = SEEDS
                .iter()
                .map(|&s| format!("0x{:016x}", replay_hash(p, s)))
                .collect();
            println!("    (Pattern::{p:?}, [{}]),", hs.join(", "));
        }
        return;
    }
    assert_eq!(GOLDEN.len(), Pattern::ALL.len(), "cover every pattern");
    for (pattern, want) in GOLDEN {
        for (i, &seed) in SEEDS.iter().enumerate() {
            let got = replay_hash(pattern, seed);
            assert_eq!(
                got, want[i],
                "{pattern:?} seed {seed}: replay hash drifted \
                 (got 0x{got:016x}); the injection stream changed"
            );
        }
    }
}

#[test]
fn rebuilt_generator_replays_identically() {
    for pattern in Pattern::ALL {
        assert_eq!(
            replay_hash(pattern, 7),
            replay_hash(pattern, 7),
            "{pattern:?} not reproducible from its seed"
        );
    }
}

#[test]
fn seeds_decorrelate_the_stream() {
    // Different seeds must give different streams: the Bernoulli coins
    // alone guarantee it for every pattern, deterministic or not.
    for pattern in Pattern::ALL {
        assert_ne!(
            replay_hash(pattern, SEEDS[0]),
            replay_hash(pattern, SEEDS[1]),
            "{pattern:?} ignored its seed"
        );
    }
}

//! Exhaustive single-router allocator micro-model-checker.
//!
//! Enumerates allocator request spaces and asserts, for every
//! configuration:
//!
//! * **structural legality** — at most one grant per output column, at most
//!   one grant per flit slot, at most two grants per input row (distinct
//!   slots, distinct outputs), and every grant backed by a request;
//! * **work conservation** — greedy allocation leaves no requested output
//!   idle; the separable allocator reaches a fixpoint (via repeated
//!   iterations) in which no free output has an unserved requester;
//! * **priority** — the oldest requester is never starved while one of its
//!   outputs is free (greedy), and the separable stages agree with an
//!   independently written reference model, pinning arbiter tie-breaks;
//! * **swap-logic correctness** — every dual grant of the unified crossbar
//!   resolves to an electrically legal segmented row (low entry strictly
//!   below high entry, packets keep their outputs, swap fired exactly when
//!   the selected columns were inverted).
//!
//! Three allocators are covered: DXbar's greedy age-ordered allocation on
//! the 4x5 **primary** crossbar (full 32^4 request space), the same greedy
//! on the 5x5 **secondary** crossbar (full turn-model alphabet always; full
//! 32^5 space in the `--ignored` sweep), and the unified design's
//! **dual-input** separable allocator with two serial V:1 arbiters plus the
//! conflict-free swap (full dual-slot mask space for competing input pairs
//! under every priority ordering, full serial-arbiter space for a single
//! row, and wide 5-input sweeps).

use dxbar::allocator::{allocate, Grant, InputRequests};
use dxbar::best_output;
use dxbar::conflict_free::{resolve, RowSelection};
use noc_core::types::PortSet;
use rayon::prelude::*;
use std::fmt;

/// A configuration for which an allocator property failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// The request configuration, rendered for reproduction.
    pub config: String,
    /// Which property failed and how.
    pub reason: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocator check failed for {}: {}",
            self.config, self.reason
        )
    }
}

impl std::error::Error for CheckError {}

/// Coverage summary of one enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckerReport {
    /// Request configurations enumerated.
    pub configs: u64,
    /// Total grants issued across all configurations.
    pub grants: u64,
    /// Maximum allocator iterations needed to reach the work-conserving
    /// fixpoint (unified allocator only; 1 for the greedy).
    pub max_rounds: u32,
}

impl CheckerReport {
    fn merge(self, other: CheckerReport) -> CheckerReport {
        CheckerReport {
            configs: self.configs + other.configs,
            grants: self.grants + other.grants,
            max_rounds: self.max_rounds.max(other.max_rounds),
        }
    }
}

// ---------------------------------------------------------------------------
// Greedy allocation (DXbar primary 4x5 and secondary 5x5)
// ---------------------------------------------------------------------------

/// All-links-available credit vector for the greedy model.
pub const UNIT_CREDITS: [u32; 4] = [1, 1, 1, 1];

/// Run DXbar's greedy age-ordered allocation for one request matrix.
/// `masks[i]` is the output set requested by input `i` (inputs listed
/// oldest first — the router sorts by age before allocating; an empty mask
/// means no flit). Uses the router's own [`dxbar::best_output`] decision.
pub fn greedy_allocate(masks: &[u8], credits: &[u32; 4]) -> Vec<Option<usize>> {
    let mut out_used = [false; 5];
    masks
        .iter()
        .map(|&m| {
            if m == 0 {
                return None;
            }
            let dir = best_output(PortSet(m), &out_used, credits, |_| 0)?;
            out_used[dir.index()] = true;
            Some(dir.index())
        })
        .collect()
}

/// Whether output `o` can accept a flit under `credits` (ejection always
/// can; links need a downstream slot).
fn output_available(o: usize, credits: &[u32; 4]) -> bool {
    o == 4 || credits[o] > 0
}

/// Check one greedy request matrix: structural legality, work conservation
/// and age-priority. Returns the number of grants.
pub fn check_greedy_matrix(masks: &[u8], credits: &[u32; 4]) -> Result<u64, CheckError> {
    let err = |reason: String| CheckError {
        config: format!("greedy masks {masks:?} credits {credits:?}"),
        reason,
    };
    let grants = greedy_allocate(masks, credits);
    let mut out_used = [false; 5];
    for (i, g) in grants.iter().enumerate() {
        let Some(o) = *g else { continue };
        if masks[i] & (1 << o) == 0 {
            return Err(err(format!("input {i} granted unrequested output {o}")));
        }
        if !output_available(o, credits) {
            return Err(err(format!("input {i} granted credit-less output {o}")));
        }
        if out_used[o] {
            return Err(err(format!("output {o} granted twice")));
        }
        out_used[o] = true;
    }
    // Work conservation + priority: an input goes ungranted only when every
    // available output it requested was taken — and taken by an *older*
    // input (age order = index order).
    for (i, g) in grants.iter().enumerate() {
        if g.is_some() || masks[i] == 0 {
            continue;
        }
        for (o, &used) in out_used.iter().enumerate() {
            if masks[i] & (1 << o) == 0 || !output_available(o, credits) {
                continue;
            }
            if !used {
                return Err(err(format!(
                    "work conservation: output {o} idle while input {i} requested it"
                )));
            }
            let taker = grants.iter().position(|&x| x == Some(o)).expect("used");
            if taker > i {
                return Err(err(format!(
                    "priority: younger input {taker} took output {o} from input {i}"
                )));
            }
        }
    }
    Ok(grants.iter().flatten().count() as u64)
}

/// Every request mask a DOR/WF route set can produce — `{Local}`, one or
/// two directions (minimal routes have at most two productive dimensions)
/// — plus the empty mask (credit-starved requester) and the adversarial
/// full mask.
pub fn turn_model_alphabet() -> Vec<u8> {
    let mut v = vec![0u8, 0b1_1111];
    for a in 0..5 {
        v.push(1 << a);
    }
    for a in 0..5u8 {
        for b in a + 1..5 {
            v.push((1 << a) | (1 << b));
        }
    }
    debug_assert_eq!(v.len(), 17);
    v
}

/// Exhaust the full 32^4 request space of the 4x5 primary crossbar, under
/// uniform credits and under a skewed credit pattern (one dead output).
pub fn check_primary_exhaustive() -> Result<CheckerReport, CheckError> {
    let firsts: Vec<u8> = (0..32).collect();
    let credit_patterns: [[u32; 4]; 2] = [UNIT_CREDITS, [2, 1, 0, 3]];
    let chunks: Vec<Result<CheckerReport, CheckError>> = firsts
        .par_iter()
        .map(|&a| {
            let mut rep = CheckerReport::default();
            for b in 0..32u8 {
                for c in 0..32u8 {
                    for d in 0..32u8 {
                        for credits in &credit_patterns {
                            rep.grants += check_greedy_matrix(&[a, b, c, d], credits)?;
                            rep.configs += 1;
                        }
                    }
                }
            }
            rep.max_rounds = 1;
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

/// Exhaust the 5x5 secondary crossbar (buffer heads + injection port) over
/// the full turn-model request alphabet: 17^5 configurations.
pub fn check_secondary_alphabet() -> Result<CheckerReport, CheckError> {
    let alpha = turn_model_alphabet();
    let chunks: Vec<Result<CheckerReport, CheckError>> = alpha
        .par_iter()
        .map(|&a| {
            let mut rep = CheckerReport {
                max_rounds: 1,
                ..Default::default()
            };
            let alpha = turn_model_alphabet();
            for &b in &alpha {
                for &c in &alpha {
                    for &d in &alpha {
                        for &e in &alpha {
                            rep.grants += check_greedy_matrix(&[a, b, c, d, e], &UNIT_CREDITS)?;
                            rep.configs += 1;
                        }
                    }
                }
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

/// The full 32^5 secondary request space — heavyweight; run with
/// `cargo test --release -- --ignored` (the CI verify-smoke job does).
pub fn check_secondary_exhaustive() -> Result<CheckerReport, CheckError> {
    let firsts: Vec<u8> = (0..32).collect();
    let chunks: Vec<Result<CheckerReport, CheckError>> = firsts
        .par_iter()
        .map(|&a| {
            let mut rep = CheckerReport {
                max_rounds: 1,
                ..Default::default()
            };
            for b in 0..32u8 {
                for c in 0..32u8 {
                    for d in 0..32u8 {
                        for e in 0..32u8 {
                            rep.grants += check_greedy_matrix(&[a, b, c, d, e], &UNIT_CREDITS)?;
                            rep.configs += 1;
                        }
                    }
                }
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

fn merge_reports(
    chunks: Vec<Result<CheckerReport, CheckError>>,
) -> Result<CheckerReport, CheckError> {
    let mut total = CheckerReport::default();
    for c in chunks {
        total = total.merge(c?);
    }
    Ok(total)
}

// ---------------------------------------------------------------------------
// Unified separable allocator (two serial V:1 arbiters + conflict-free swap)
// ---------------------------------------------------------------------------

/// Independent reference model of the separable output-first allocator with
/// the default lowest-set-bit V:1 output choice. Deliberately written with
/// explicit stage tables (not iterator chains) so a bug in
/// [`dxbar::allocator::allocate`] cannot be replicated here by shared code;
/// the differential test pins every arbiter tie-break.
pub fn reference_allocate(inputs: &[InputRequests<u32>], outputs: usize) -> Vec<Grant> {
    // Stage 1: each output's P:1 arbiter picks the requesting input whose
    // best flit carries the highest key; ties go to the lowest input index.
    let mut winner: Vec<Option<usize>> = vec![None; outputs];
    for (o, w) in winner.iter_mut().enumerate() {
        let mut best: Option<(u32, usize)> = None;
        for (p, req) in inputs.iter().enumerate() {
            let mut port_key = None;
            for slot in req.slots.iter().flatten() {
                let (mask, k) = *slot;
                if mask & (1 << o) != 0 {
                    port_key = Some(port_key.map_or(k, |x: u32| x.max(k)));
                }
            }
            if let Some(k) = port_key {
                let better = match best {
                    None => true,
                    Some((bk, _)) => k > bk,
                };
                if better {
                    best = Some((k, p));
                }
            }
        }
        *w = best.map(|(_, p)| p);
    }

    // Input side: first V:1 arbiter (highest key, ties to slot 0), then the
    // second arbiter in series with the winner's flit and output masked.
    let mut grants = Vec::new();
    for (p, req) in inputs.iter().enumerate() {
        let usable_of = |v: usize, blocked: u8| -> u8 {
            req.slots[v].map_or(0, |(mask, _)| {
                let mut u = 0u8;
                for (o, &w) in winner.iter().enumerate().take(outputs) {
                    if w == Some(p) && mask & (1 << o) != 0 {
                        u |= 1 << o;
                    }
                }
                u & !blocked
            })
        };
        let key_of = |v: usize| req.slots[v].map(|(_, k)| k).unwrap_or(0);
        let mut first: Option<usize> = None;
        for v in 0..2 {
            if usable_of(v, 0) == 0 {
                continue;
            }
            first = Some(match first {
                None => v,
                Some(w) => {
                    if key_of(v) > key_of(w) {
                        v
                    } else {
                        w
                    }
                }
            });
        }
        let Some(v1) = first else { continue };
        let o1 = usable_of(v1, 0).trailing_zeros() as usize;
        grants.push(Grant {
            input: p,
            v: v1,
            output: o1,
        });
        let v2 = 1 - v1;
        let u2 = usable_of(v2, 1 << o1);
        if u2 != 0 {
            grants.push(Grant {
                input: p,
                v: v2,
                output: u2.trailing_zeros() as usize,
            });
        }
    }
    grants
}

/// Structural legality of a grant set against its request matrix.
pub fn check_grant_structure(
    inputs: &[InputRequests<u32>],
    grants: &[Grant],
) -> Result<(), CheckError> {
    let err = |reason: String| CheckError {
        config: render_inputs(inputs),
        reason,
    };
    let mut out_seen = [false; 8];
    let mut slot_seen = [[false; 2]; 8];
    let mut per_input = [0u8; 8];
    for g in grants {
        if out_seen[g.output] {
            return Err(err(format!("output {} granted twice", g.output)));
        }
        out_seen[g.output] = true;
        if slot_seen[g.input][g.v] {
            return Err(err(format!("slot ({}, {}) granted twice", g.input, g.v)));
        }
        slot_seen[g.input][g.v] = true;
        let Some((mask, _)) = inputs.get(g.input).and_then(|r| r.slots[g.v]) else {
            return Err(err(format!("grant for empty slot ({}, {})", g.input, g.v)));
        };
        if mask & (1 << g.output) == 0 {
            return Err(err(format!(
                "input {} slot {} granted unrequested output {}",
                g.input, g.v, g.output
            )));
        }
        per_input[g.input] += 1;
    }
    for (p, &n) in per_input.iter().enumerate() {
        if n > 2 {
            return Err(err(format!("input {p} received {n} grants")));
        }
    }
    Ok(())
}

/// Swap-logic correctness for every dual-granted row: the conflict-free
/// allocator must keep both outputs, order the entry points, and swap
/// exactly when the bufferless column is above the buffered one.
pub fn check_swap_logic(inputs: &[InputRequests<u32>], grants: &[Grant]) -> Result<(), CheckError> {
    let err = |reason: String| CheckError {
        config: render_inputs(inputs),
        reason,
    };
    for p in 0..inputs.len() {
        let row: Vec<&Grant> = grants.iter().filter(|g| g.input == p).collect();
        if row.len() != 2 {
            continue;
        }
        let bufferless = row.iter().find(|g| g.v == 0);
        let buffered = row.iter().find(|g| g.v == 1);
        let (Some(bl), Some(bf)) = (bufferless, buffered) else {
            return Err(err(format!("row {p} dual grant without distinct slots")));
        };
        let sel = RowSelection {
            bufferless_out: bl.output,
            buffered_out: bf.output,
        };
        let r = resolve(sel);
        if r.low_entry_out >= r.high_entry_out {
            return Err(err(format!("row {p}: entry points not ordered: {r:?}")));
        }
        let mut resolved = [r.low_entry_out, r.high_entry_out];
        resolved.sort_unstable();
        let mut wanted = [bl.output, bf.output];
        wanted.sort_unstable();
        if resolved != wanted {
            return Err(err(format!("row {p}: packets lost their outputs: {r:?}")));
        }
        if r.swapped != (bl.output > bf.output) {
            return Err(err(format!(
                "row {p}: swap fired wrongly (bufferless {}, buffered {}, swapped {})",
                bl.output, bf.output, r.swapped
            )));
        }
        if r.open_gate != r.low_entry_out {
            return Err(err(format!("row {p}: wrong segmentation gate: {r:?}")));
        }
    }
    Ok(())
}

/// Iterate the allocator to its fixpoint and assert work conservation:
/// when no further grant is possible, no free output may have an unserved
/// requester. Returns the number of rounds needed.
pub fn saturate(inputs: &[InputRequests<u32>]) -> Result<u32, CheckError> {
    let err = |reason: String| CheckError {
        config: render_inputs(inputs),
        reason,
    };
    let mut residual = inputs.to_vec();
    let mut free: u8 = 0b1_1111;
    let mut rounds = 0u32;
    loop {
        let grants = allocate(&residual, 5);
        if grants.is_empty() {
            for (p, req) in residual.iter().enumerate() {
                for (v, slot) in req.slots.iter().enumerate() {
                    if let Some((mask, _)) = slot {
                        if mask & free != 0 {
                            return Err(err(format!(
                                "work conservation: slot ({p}, {v}) still requests \
                                 free outputs {:#07b} after {rounds} round(s)",
                                mask & free
                            )));
                        }
                    }
                }
            }
            return Ok(rounds);
        }
        rounds += 1;
        if rounds > 8 {
            return Err(err("allocator failed to reach a fixpoint".into()));
        }
        for g in &grants {
            free &= !(1 << g.output);
            residual[g.input].slots[g.v] = None;
        }
        for req in residual.iter_mut() {
            for slot in req.slots.iter_mut() {
                if let Some((mask, _)) = slot {
                    *mask &= free;
                    if *mask == 0 {
                        *slot = None;
                    }
                }
            }
        }
    }
}

fn render_inputs(inputs: &[InputRequests<u32>]) -> String {
    let rows: Vec<String> = inputs
        .iter()
        .map(|r| {
            let s: Vec<String> = r
                .slots
                .iter()
                .map(|s| match s {
                    Some((m, k)) => format!("{m:#07b}/k{k}"),
                    None => "-".into(),
                })
                .collect();
            format!("[{}]", s.join(" "))
        })
        .collect();
    format!("unified requests {}", rows.join(" "))
}

/// Full check of one unified request matrix: structural legality,
/// differential against the reference model, swap-logic correctness, and
/// fixpoint work conservation. Returns (grants, rounds).
pub fn check_unified_matrix(inputs: &[InputRequests<u32>]) -> Result<(u64, u32), CheckError> {
    let grants = allocate(inputs, 5);
    check_grant_structure(inputs, &grants)?;

    let mut reference = reference_allocate(inputs, 5);
    let mut actual = grants.clone();
    let key = |g: &Grant| (g.input, g.v, g.output);
    reference.sort_unstable_by_key(key);
    actual.sort_unstable_by_key(key);
    if reference != actual {
        return Err(CheckError {
            config: render_inputs(inputs),
            reason: format!("differs from reference model: {actual:?} vs {reference:?}"),
        });
    }

    check_swap_logic(inputs, &grants)?;
    let rounds = saturate(inputs)?;
    Ok((grants.len() as u64, rounds.max(1)))
}

fn slot(mask: u8, key: u32) -> Option<(u8, u32)> {
    (mask != 0).then_some((mask, key))
}

/// Exhaust the two serial V:1 arbiters of a single input row: all 32x32
/// dual-slot mask pairs under both relative priority orders, with no
/// competing input (every requested output is granted to the row, so the
/// serial arbiters see the full space of selection vectors).
pub fn check_serial_arbiters_exhaustive() -> Result<CheckerReport, CheckError> {
    let mut rep = CheckerReport::default();
    for a in 0..32u8 {
        for b in 0..32u8 {
            for (ka, kb) in [(2u32, 1u32), (1, 2), (1, 1)] {
                let inputs = vec![InputRequests {
                    slots: [slot(a, ka), slot(b, kb)],
                }];
                let (g, r) = check_unified_matrix(&inputs)?;
                rep.configs += 1;
                rep.grants += g;
                rep.max_rounds = rep.max_rounds.max(r);
            }
        }
    }
    Ok(rep)
}

/// Exhaust competing dual-input pairs: two active input rows, full 32-mask
/// space for all four flit slots, under a fixed descending priority order
/// (1M configurations). Output-stage conflicts, serial-arbiter masking and
/// the swap path are all exercised.
pub fn check_unified_pairs_exhaustive() -> Result<CheckerReport, CheckError> {
    let firsts: Vec<u8> = (0..32).collect();
    let chunks: Vec<Result<CheckerReport, CheckError>> = firsts
        .par_iter()
        .map(|&a| {
            let mut rep = CheckerReport::default();
            for b in 0..32u8 {
                for c in 0..32u8 {
                    for d in 0..32u8 {
                        let inputs = vec![
                            InputRequests {
                                slots: [slot(a, 4), slot(b, 3)],
                            },
                            InputRequests {
                                slots: [slot(c, 2), slot(d, 1)],
                            },
                        ];
                        let (g, r) = check_unified_matrix(&inputs)?;
                        rep.configs += 1;
                        rep.grants += g;
                        rep.max_rounds = rep.max_rounds.max(r);
                    }
                }
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

/// All priority orderings of a competing pair over the turn-model
/// alphabet: 17^4 mask combinations x 24 key permutations, covering every
/// relative age order of the four flits.
pub fn check_unified_pair_orders() -> Result<CheckerReport, CheckError> {
    const PERMS: [[u32; 4]; 24] = [
        [1, 2, 3, 4],
        [1, 2, 4, 3],
        [1, 3, 2, 4],
        [1, 3, 4, 2],
        [1, 4, 2, 3],
        [1, 4, 3, 2],
        [2, 1, 3, 4],
        [2, 1, 4, 3],
        [2, 3, 1, 4],
        [2, 3, 4, 1],
        [2, 4, 1, 3],
        [2, 4, 3, 1],
        [3, 1, 2, 4],
        [3, 1, 4, 2],
        [3, 2, 1, 4],
        [3, 2, 4, 1],
        [3, 4, 1, 2],
        [3, 4, 2, 1],
        [4, 1, 2, 3],
        [4, 1, 3, 2],
        [4, 2, 1, 3],
        [4, 2, 3, 1],
        [4, 3, 1, 2],
        [4, 3, 2, 1],
    ];
    let alpha = turn_model_alphabet();
    let chunks: Vec<Result<CheckerReport, CheckError>> = alpha
        .par_iter()
        .map(|&a| {
            let alpha = turn_model_alphabet();
            let mut rep = CheckerReport::default();
            for &b in &alpha {
                for &c in &alpha {
                    for &d in &alpha {
                        for ks in &PERMS {
                            let inputs = vec![
                                InputRequests {
                                    slots: [slot(a, ks[0]), slot(b, ks[1])],
                                },
                                InputRequests {
                                    slots: [slot(c, ks[2]), slot(d, ks[3])],
                                },
                            ];
                            let (g, r) = check_unified_matrix(&inputs)?;
                            rep.configs += 1;
                            rep.grants += g;
                            rep.max_rounds = rep.max_rounds.max(r);
                        }
                    }
                }
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

/// Wide sweep: all five input rows active with bufferless flits over a
/// reduced mask alphabet (empty, singletons, three two-port masks) under
/// descending priorities — 9^5 configurations of full-router competition.
pub fn check_unified_wide_sweep() -> Result<CheckerReport, CheckError> {
    let alpha: [u8; 9] = [0, 1, 2, 4, 8, 16, 0b00011, 0b00101, 0b11000];
    let mut rep = CheckerReport::default();
    for &a in &alpha {
        for &b in &alpha {
            for &c in &alpha {
                for &d in &alpha {
                    for &e in &alpha {
                        let inputs = vec![
                            InputRequests {
                                slots: [slot(a, 5), None],
                            },
                            InputRequests {
                                slots: [slot(b, 4), None],
                            },
                            InputRequests {
                                slots: [slot(c, 3), None],
                            },
                            InputRequests {
                                slots: [slot(d, 2), None],
                            },
                            InputRequests {
                                slots: [slot(e, 1), None],
                            },
                        ];
                        let (g, r) = check_unified_matrix(&inputs)?;
                        rep.configs += 1;
                        rep.grants += g;
                        rep.max_rounds = rep.max_rounds.max(r);
                    }
                }
            }
        }
    }
    Ok(rep)
}

/// Wide sweep over the full turn-model alphabet (17^5 single-slot rows) —
/// heavyweight; run with `cargo test --release -- --ignored`.
pub fn check_unified_wide_exhaustive() -> Result<CheckerReport, CheckError> {
    let alpha = turn_model_alphabet();
    let chunks: Vec<Result<CheckerReport, CheckError>> = alpha
        .par_iter()
        .map(|&a| {
            let alpha = turn_model_alphabet();
            let mut rep = CheckerReport::default();
            for &b in &alpha {
                for &c in &alpha {
                    for &d in &alpha {
                        for &e in &alpha {
                            let inputs = vec![
                                InputRequests {
                                    slots: [slot(a, 5), None],
                                },
                                InputRequests {
                                    slots: [slot(b, 4), None],
                                },
                                InputRequests {
                                    slots: [slot(c, 3), None],
                                },
                                InputRequests {
                                    slots: [slot(d, 2), None],
                                },
                                InputRequests {
                                    slots: [slot(e, 1), None],
                                },
                            ];
                            let (g, r) = check_unified_matrix(&inputs)?;
                            rep.configs += 1;
                            rep.grants += g;
                            rep.max_rounds = rep.max_rounds.max(r);
                        }
                    }
                }
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_single_request_granted() {
        assert_eq!(
            check_greedy_matrix(&[0b00100, 0, 0, 0], &UNIT_CREDITS),
            Ok(1)
        );
    }

    #[test]
    fn greedy_conflict_older_wins() {
        let g = greedy_allocate(&[0b00010, 0b00010], &UNIT_CREDITS);
        assert_eq!(g, vec![Some(1), None]);
    }

    #[test]
    fn greedy_prefers_ejection() {
        let g = greedy_allocate(&[0b10010], &UNIT_CREDITS);
        assert_eq!(g, vec![Some(4)]);
    }

    #[test]
    fn greedy_respects_credits() {
        let g = greedy_allocate(&[0b00010], &[1, 0, 1, 1]);
        assert_eq!(g, vec![None]);
    }

    #[test]
    fn turn_model_alphabet_has_17_masks() {
        let a = turn_model_alphabet();
        assert_eq!(a.len(), 17);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 17);
    }

    #[test]
    fn reference_matches_on_fig4b() {
        // I0 -> O2 and I0' -> O3 simultaneously (paper Fig. 4(b)).
        let inputs = vec![InputRequests {
            slots: [slot(0b00100, 10), slot(0b01000, 5)],
        }];
        let (g, _) = check_unified_matrix(&inputs).unwrap();
        assert_eq!(g, 2);
    }

    #[test]
    fn saturate_reports_rounds() {
        // Both inputs request {O1, O2}; the older wins both output arbiters
        // in round 1 and its V:1 keeps only O1, so the second allocation
        // iteration rescues the younger flit onto the still-free O2.
        let inputs = vec![
            InputRequests {
                slots: [slot(0b00110, 9), None],
            },
            InputRequests {
                slots: [slot(0b00110, 1), None],
            },
        ];
        let rounds = saturate(&inputs).unwrap();
        assert_eq!(rounds, 2, "second iteration must serve the loser");
        let (g, r) = check_unified_matrix(&inputs).unwrap();
        assert_eq!(g, 1, "round 1 of a separable allocator grants one here");
        assert_eq!(r, 2);
    }

    #[test]
    fn separable_allocator_may_strand_a_loser() {
        // Input 1's only requested output goes to the older input 0, which
        // had an alternative. A maximum matching would serve both; the
        // separable allocator legally serves one — work conservation still
        // holds because O1 is not free.
        let inputs = vec![
            InputRequests {
                slots: [slot(0b00110, 9), None],
            },
            InputRequests {
                slots: [slot(0b00010, 1), None],
            },
        ];
        let (g, _) = check_unified_matrix(&inputs).unwrap();
        assert_eq!(g, 1);
    }

    // ------------------------------------------------------------------
    // Exhaustive enumerations (the micro-model-checker proper)
    // ------------------------------------------------------------------

    #[test]
    fn primary_4x5_full_request_space() {
        let rep = check_primary_exhaustive().unwrap();
        assert_eq!(rep.configs, 2 * 32 * 32 * 32 * 32);
        assert!(rep.grants > 0);
    }

    #[test]
    fn secondary_5x5_turn_model_space() {
        let rep = check_secondary_alphabet().unwrap();
        assert_eq!(rep.configs, 17u64.pow(5));
        assert!(rep.grants > 0);
    }

    #[test]
    #[ignore = "33.5M configs; run with --release (CI verify-smoke does)"]
    fn secondary_5x5_full_request_space() {
        let rep = check_secondary_exhaustive().unwrap();
        assert_eq!(rep.configs, 32u64.pow(5));
    }

    #[test]
    fn unified_serial_arbiters_full_space() {
        let rep = check_serial_arbiters_exhaustive().unwrap();
        assert_eq!(rep.configs, 3 * 32 * 32);
        assert!(rep.grants > 0);
    }

    #[test]
    fn unified_pairs_full_mask_space() {
        let rep = check_unified_pairs_exhaustive().unwrap();
        assert_eq!(rep.configs, 32u64.pow(4));
        assert!(
            rep.max_rounds <= 3,
            "fixpoint depth grew: {}",
            rep.max_rounds
        );
    }

    #[test]
    fn unified_wide_sweep_competes_all_rows() {
        let rep = check_unified_wide_sweep().unwrap();
        assert_eq!(rep.configs, 9u64.pow(5));
    }

    #[test]
    #[ignore = "17^4 x 24 orders; run with --release (CI verify-smoke does)"]
    fn unified_pair_all_priority_orders() {
        let rep = check_unified_pair_orders().unwrap();
        assert_eq!(rep.configs, 17u64.pow(4) * 24);
    }

    #[test]
    #[ignore = "17^5 full alphabet; run with --release (CI verify-smoke does)"]
    fn unified_wide_full_alphabet() {
        let rep = check_unified_wide_exhaustive().unwrap();
        assert_eq!(rep.configs, 17u64.pow(5));
    }

    // ------------------------------------------------------------------
    // Mutation canaries: deliberately broken allocators must be caught.
    // ------------------------------------------------------------------

    /// `allocate` with the serial-arbiter comparison flipped: the second
    /// V:1 arbiter forgets to mask the first winner's output.
    fn mutant_unmasked_second(inputs: &[InputRequests<u32>]) -> Vec<Grant> {
        let mut grants = allocate(inputs, 5);
        // Re-introduce the bug after the fact: retarget every second grant
        // of a row onto the first grant's output when the flit requested
        // it — exactly what the missing `& !(1 << o1)` mask would allow.
        let firsts: Vec<Grant> = grants
            .iter()
            .copied()
            .filter(|g| {
                grants
                    .iter()
                    .filter(|h| h.input == g.input)
                    .map(|h| h.v)
                    .min()
                    == Some(g.v)
            })
            .collect();
        for g in grants.iter_mut() {
            if let Some(f) = firsts.iter().find(|f| f.input == g.input) {
                if g.v != f.v {
                    let (mask, _) = inputs[g.input].slots[g.v].unwrap();
                    if mask & (1 << f.output) != 0 {
                        g.output = f.output;
                    }
                }
            }
        }
        grants
    }

    #[test]
    fn canary_unmasked_second_arbiter_is_caught() {
        // Both flits of one row want output 1; the healthy allocator gives
        // the second flit nothing (or another output) — the mutant
        // double-drives output 1 and the structural check must fire.
        let inputs = vec![InputRequests {
            slots: [slot(0b00010, 9), slot(0b00110, 5)],
        }];
        let grants = mutant_unmasked_second(&inputs);
        let caught = check_grant_structure(&inputs, &grants).is_err();
        assert!(caught, "mutant slipped past the checker: {grants:?}");
    }

    /// Greedy allocation with the availability comparison flipped: the
    /// output-busy check is ignored.
    fn mutant_greedy_ignore_used(masks: &[u8]) -> Vec<Option<usize>> {
        masks
            .iter()
            .map(|&m| {
                if m == 0 {
                    return None;
                }
                // out_used pinned to all-free: the mutated comparison.
                best_output(PortSet(m), &[false; 5], &UNIT_CREDITS, |_| 0).map(|d| d.index())
            })
            .collect()
    }

    #[test]
    fn canary_greedy_double_grant_is_caught() {
        let masks = [0b00010u8, 0b00010];
        let grants = mutant_greedy_ignore_used(&masks);
        assert_eq!(grants, vec![Some(1), Some(1)], "mutant double-grants");
        // The healthy matrix check (which recomputes correctly) passes, so
        // validate the grant set the way the checker validates structures:
        let mut used = [false; 5];
        let mut caught = false;
        for g in grants.iter().flatten() {
            if used[*g] {
                caught = true;
            }
            used[*g] = true;
        }
        assert!(caught, "output exclusivity violation must be detected");
    }

    /// Conflict detection with the comparison flipped (`<` for `>`).
    fn mutant_resolve_inverted(sel: RowSelection) -> (usize, usize, bool) {
        let swapped = sel.bufferless_out < sel.buffered_out; // mutated
        let (low, high) = if swapped {
            (sel.buffered_out, sel.bufferless_out)
        } else {
            (sel.bufferless_out, sel.buffered_out)
        };
        (low, high, swapped)
    }

    #[test]
    fn canary_inverted_swap_is_caught() {
        // bufferless col 4, buffered col 2: must swap; the mutant doesn't
        // and leaves the entry points inverted.
        let (low, high, _) = mutant_resolve_inverted(RowSelection {
            bufferless_out: 4,
            buffered_out: 2,
        });
        assert!(
            low >= high,
            "mutant should produce an illegal row for this input"
        );
        // The real checker on the real resolve() never does:
        let inputs = vec![InputRequests {
            slots: [slot(0b10000, 9), slot(0b00100, 5)],
        }];
        let grants = allocate(&inputs, 5);
        check_swap_logic(&inputs, &grants).unwrap();
    }
}

//! Global flit ledger: conservation and no-duplication accounting.
//!
//! Tracks the lifecycle of every flit the network accepts: injected →
//! in-flight (at some router or on a link) → ejected exactly once, or
//! dropped with a recorded reason (SCARAB). Any flit observed outside this
//! lifecycle — ejected twice, arriving without having been injected,
//! ejected at the wrong node — is a violation.

use crate::violation::{FlitId, Violation, ViolationKind};
use noc_core::flit::Flit;
use noc_core::types::{Cycle, NodeId};
use std::collections::{HashMap, HashSet};

/// Where a live flit was last seen.
#[derive(Debug, Clone, Copy)]
pub struct FlitPos {
    /// Router where the flit was last observed (inside it or leaving it).
    pub node: NodeId,
    /// Cycle of the last observation.
    pub since: Cycle,
    pub src: NodeId,
    pub dst: NodeId,
}

/// Ledger of every flit the network has accepted.
///
/// Resilient runs extend the base lifecycle: a flit may legally vanish in
/// transit (dead link, transient drop) or bounce off the ejection-port CRC,
/// provided the source NI retransmits it to delivery or counts it lost. A
/// spurious retransmission timeout can put *two* live instances of one flit
/// identity into the network at once, so live bookkeeping counts instances;
/// only sanctioned re-injections (announced via
/// [`FlitLedger::on_retransmit`]) may create the second instance.
#[derive(Debug, Default)]
pub struct FlitLedger {
    /// Injected but not yet ejected or dropped (position of one live
    /// instance; see `extra` for additional sanctioned instances).
    in_flight: HashMap<FlitId, FlitPos>,
    /// Additional live instances beyond the one tracked in `in_flight`
    /// (spurious-timeout retransmissions racing the original).
    extra: HashMap<FlitId, u32>,
    /// Announced retransmissions whose re-injection has not yet been seen;
    /// consumes one credit per sanctioned injection.
    sanctioned: HashMap<FlitId, u32>,
    /// Vanished in transit or CRC-bounced: must end the run delivered or
    /// counted lost, else it leaked.
    pending_recovery: HashSet<FlitId>,
    /// Counted lost by the source NI after exhausting the retry budget.
    lost: HashSet<FlitId>,
    /// Dropped (SCARAB) and awaiting retransmission; a retransmitted copy
    /// re-enters `in_flight` via a fresh injection observation.
    dropped: HashSet<FlitId>,
    /// Delivered at their destination. A flit may be dropped and
    /// retransmitted many times but delivered only once.
    ejected: HashSet<FlitId>,
    injected_total: u64,
    ejected_total: u64,
    dropped_total: u64,
    transit_lost_total: u64,
    crc_bounced_total: u64,
    lost_total: u64,
}

fn id(f: &Flit) -> FlitId {
    (f.packet.0, f.flit_index)
}

impl FlitLedger {
    pub fn new() -> FlitLedger {
        FlitLedger::default()
    }

    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    pub fn counts(&self) -> (u64, u64, u64) {
        (self.injected_total, self.ejected_total, self.dropped_total)
    }

    /// Resilience totals: `(transit-lost, crc-bounced, counted-lost)`.
    pub fn recovery_counts(&self) -> (u64, u64, u64) {
        (
            self.transit_lost_total,
            self.crc_bounced_total,
            self.lost_total,
        )
    }

    /// Whether the recovery protocol resolved this flit identity: it was
    /// eventually delivered, or formally counted lost.
    pub fn resolved(&self, fid: FlitId) -> bool {
        self.ejected.contains(&fid) || self.lost.contains(&fid)
    }

    /// Iterate over live flits (for stuck-flit reports and heatmaps).
    pub fn live(&self) -> impl Iterator<Item = (&FlitId, &FlitPos)> {
        self.in_flight.iter()
    }

    /// Remove one live instance of `fid`; returns `false` if none was live.
    fn remove_instance(&mut self, fid: FlitId) -> bool {
        if let Some(n) = self.extra.get_mut(&fid) {
            *n -= 1;
            if *n == 0 {
                self.extra.remove(&fid);
            }
            return true;
        }
        self.in_flight.remove(&fid).is_some()
    }

    /// A flit left the injection queue at `node`.
    pub fn on_inject(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        self.injected_total += 1;
        // A retransmission of a dropped flit is a legal re-injection.
        self.dropped.remove(&fid);
        // A sanctioned NI retransmission may legally coexist with a live
        // instance (spurious timeout) or follow a delivery (lost ACK).
        if let Some(n) = self.sanctioned.get_mut(&fid) {
            *n -= 1;
            if *n == 0 {
                self.sanctioned.remove(&fid);
            }
            match self.in_flight.entry(fid) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    *self.extra.entry(fid).or_insert(0) += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(FlitPos {
                        node,
                        since: cycle,
                        src: f.src,
                        dst: f.dst,
                    });
                }
            }
            return;
        }
        if self.ejected.contains(&fid) {
            out.push(Violation {
                kind: ViolationKind::Duplicate,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: "flit re-injected after delivery".into(),
            });
            return;
        }
        if let Some(prev) = self.in_flight.insert(
            fid,
            FlitPos {
                node,
                since: cycle,
                src: f.src,
                dst: f.dst,
            },
        ) {
            out.push(Violation {
                kind: ViolationKind::Duplicate,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: format!(
                    "flit injected while already in flight (last seen at {} cycle {})",
                    prev.node, prev.since
                ),
            });
        }
    }

    /// A flit arrived on a link input of `node`: refresh its position.
    pub fn on_arrival(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        match self.in_flight.get_mut(&fid) {
            Some(pos) => {
                pos.node = node;
                pos.since = cycle;
            }
            None => {
                let detail = if self.ejected.contains(&fid) {
                    "delivered flit re-appeared on a link"
                } else if self.dropped.contains(&fid) {
                    "dropped flit re-appeared on a link without retransmission"
                } else {
                    "flit on a link was never injected"
                };
                out.push(Violation {
                    kind: ViolationKind::Phantom,
                    cycle,
                    router: Some(node),
                    flits: vec![fid],
                    detail: detail.into(),
                });
            }
        }
    }

    /// A flit was ejected to the PE at `node`. Sequenced flits failing
    /// their CRC are *bounces*, not deliveries: the instance leaves the
    /// network but the identity must still be recovered or counted lost.
    pub fn on_eject(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        if f.seq != 0 && !f.crc_ok() {
            self.crc_bounced_total += 1;
            if !self.remove_instance(fid) {
                out.push(Violation {
                    kind: ViolationKind::Phantom,
                    cycle,
                    router: Some(node),
                    flits: vec![fid],
                    detail: "corrupt flit at the ejection port was not in flight".into(),
                });
            }
            self.pending_recovery.insert(fid);
            return;
        }
        self.ejected_total += 1;
        if f.dst != node {
            out.push(Violation {
                kind: ViolationKind::WrongEjectNode,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: format!("ejected at {} but destined for {}", node, f.dst),
            });
        }
        if !self.remove_instance(fid) {
            let detail = if self.ejected.contains(&fid) {
                "flit ejected twice"
            } else {
                "ejected flit was never injected"
            };
            out.push(Violation {
                kind: if self.ejected.contains(&fid) {
                    ViolationKind::Duplicate
                } else {
                    ViolationKind::Phantom
                },
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: detail.into(),
            });
        }
        self.pending_recovery.remove(&fid);
        if !self.ejected.insert(fid) {
            // Second insert: either already reported above, or a sanctioned
            // duplicate delivery (the engine suppresses it at reassembly).
        }
    }

    /// A flit was dropped at `node` (legal only for dropping designs; the
    /// oracle checks the profile before calling this).
    pub fn on_drop(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        self.dropped_total += 1;
        if !self.remove_instance(fid) && !self.dropped.contains(&fid) {
            out.push(Violation {
                kind: ViolationKind::Phantom,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: "dropped flit was not in flight".into(),
            });
        }
        self.dropped.insert(fid);
    }

    /// A flit instance vanished in transit (transient drop strike or a dead
    /// link). Legal, but the identity now awaits recovery: it must end the
    /// run delivered or counted lost.
    pub fn on_transit_loss(
        &mut self,
        f: &Flit,
        node: NodeId,
        cycle: Cycle,
        out: &mut Vec<Violation>,
    ) {
        let fid = id(f);
        self.transit_lost_total += 1;
        if !self.remove_instance(fid) {
            out.push(Violation {
                kind: ViolationKind::Phantom,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: "transit-lost flit was not in flight".into(),
            });
        }
        self.pending_recovery.insert(fid);
    }

    /// The source NI announced a retransmission of `f`: its next injection
    /// observation is sanctioned (not a duplicate).
    pub fn on_retransmit(&mut self, f: &Flit) {
        *self.sanctioned.entry(id(f)).or_insert(0) += 1;
    }

    /// The source NI exhausted the retry budget for `f`: the identity is
    /// formally lost, which resolves its pending recovery.
    pub fn on_lost(&mut self, f: &Flit) {
        self.lost_total += 1;
        self.lost.insert(id(f));
    }

    /// End-of-run check: nothing may still be in flight once the network
    /// reports quiescent. Dropped flits whose packet was never delivered
    /// count as leaks too (the engine retransmits until delivery).
    pub fn finalize(&self, cycle: Cycle, out: &mut Vec<Violation>) {
        if !self.in_flight.is_empty() {
            let mut flits: Vec<FlitId> = self.in_flight.keys().copied().collect();
            flits.sort_unstable();
            out.push(Violation {
                kind: ViolationKind::Leak,
                cycle,
                router: None,
                flits,
                detail: format!(
                    "{} flit(s) still in flight after drain",
                    self.in_flight.len()
                ),
            });
        }
        let undelivered: Vec<FlitId> = self
            .dropped
            .iter()
            .filter(|fid| !self.ejected.contains(*fid) && !self.lost.contains(*fid))
            .copied()
            .collect();
        if !undelivered.is_empty() {
            let mut flits = undelivered;
            flits.sort_unstable();
            out.push(Violation {
                kind: ViolationKind::Leak,
                cycle,
                router: None,
                flits: flits.clone(),
                detail: format!(
                    "{} dropped flit(s) never retransmitted to delivery",
                    flits.len()
                ),
            });
        }
        // Every flit removed in transit (or bounced by the CRC) must have
        // been recovered to delivery or formally counted lost.
        let unrecovered: Vec<FlitId> = self
            .pending_recovery
            .iter()
            .filter(|fid| !self.resolved(**fid))
            .copied()
            .collect();
        if !unrecovered.is_empty() {
            let mut flits = unrecovered;
            flits.sort_unstable();
            out.push(Violation {
                kind: ViolationKind::Leak,
                cycle,
                router: None,
                flits: flits.clone(),
                detail: format!(
                    "{} flit(s) removed in transit were neither recovered nor counted lost",
                    flits.len()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::flit::PacketId;

    fn flit(pid: u64, src: u16, dst: u16) -> Flit {
        Flit::synthetic(PacketId(pid), NodeId(src), NodeId(dst), 0)
    }

    #[test]
    fn normal_lifecycle_is_clean() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_arrival(&f, NodeId(1), 3, &mut v);
        led.on_arrival(&f, NodeId(3), 5, &mut v);
        led.on_eject(&f, NodeId(3), 5, &mut v);
        led.finalize(10, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(led.counts(), (1, 1, 0));
    }

    #[test]
    fn double_ejection_is_duplicate() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_eject(&f, NodeId(3), 5, &mut v);
        led.on_eject(&f, NodeId(3), 6, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Duplicate);
    }

    #[test]
    fn phantom_arrival_is_flagged() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        led.on_arrival(&flit(9, 0, 3), NodeId(1), 4, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Phantom);
    }

    #[test]
    fn wrong_destination_ejection_is_flagged() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_eject(&f, NodeId(2), 5, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::WrongEjectNode);
    }

    #[test]
    fn drop_and_retransmit_is_legal_but_leak_without_delivery() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_drop(&f, NodeId(1), 3, &mut v);
        assert!(v.is_empty());
        // Never retransmitted: finalize reports a leak.
        led.finalize(100, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Leak);
        // Retransmit + deliver clears it.
        v.clear();
        led.on_inject(&f, NodeId(0), 10, &mut v);
        led.on_eject(&f, NodeId(3), 14, &mut v);
        led.finalize(100, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    fn sequenced_flit(pid: u64, src: u16, dst: u16, seq: u32) -> Flit {
        let mut f = flit(pid, src, dst);
        f.set_seq(seq);
        f
    }

    #[test]
    fn transit_loss_recovered_by_retransmission_is_clean() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = sequenced_flit(1, 0, 3, 1);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_transit_loss(&f, NodeId(1), 3, &mut v);
        assert!(v.is_empty(), "{v:?}");
        led.on_retransmit(&f);
        led.on_inject(&f, NodeId(0), 140, &mut v);
        led.on_eject(&f, NodeId(3), 150, &mut v);
        led.finalize(200, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(led.recovery_counts(), (1, 0, 0));
    }

    // Canary for the "NI acks the wrong sequence number" mutation: the real
    // flit's pending entry disappears, so it is never retransmitted after a
    // transit loss and never counted lost — the new oracle must flag it.
    #[test]
    fn transit_loss_without_recovery_or_loss_accounting_is_a_leak() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = sequenced_flit(1, 0, 3, 1);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_transit_loss(&f, NodeId(1), 3, &mut v);
        led.finalize(10_000, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Leak);
        assert!(v[0].detail.contains("neither recovered nor counted lost"));
    }

    #[test]
    fn give_up_resolves_pending_recovery() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = sequenced_flit(1, 0, 3, 1);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_transit_loss(&f, NodeId(1), 3, &mut v);
        led.on_lost(&f);
        led.finalize(10_000, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(led.recovery_counts(), (1, 0, 1));
        assert!(led.resolved((1, 0)));
    }

    #[test]
    fn crc_bounce_is_not_a_delivery_and_requires_recovery() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let clean = sequenced_flit(1, 0, 3, 1);
        let mut corrupt = clean;
        corrupt.corrupt_payload(0b100);
        led.on_inject(&clean, NodeId(0), 1, &mut v);
        led.on_eject(&corrupt, NodeId(3), 9, &mut v);
        assert!(v.is_empty(), "bounce is legal: {v:?}");
        assert_eq!(led.counts().1, 0, "a bounce is not an ejection");
        led.finalize(10_000, &mut v);
        assert_eq!(v.len(), 1, "unrecovered bounce leaks");
        assert_eq!(v[0].kind, ViolationKind::Leak);
        // Retransmit + clean delivery clears it.
        v.clear();
        led.on_retransmit(&clean);
        led.on_inject(&clean, NodeId(0), 200, &mut v);
        led.on_eject(&clean, NodeId(3), 210, &mut v);
        led.finalize(10_000, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(led.recovery_counts(), (0, 1, 0));
    }

    #[test]
    fn sanctioned_retransmit_allows_two_live_instances() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = sequenced_flit(1, 0, 3, 1);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        // Spurious timeout: a second instance enters while the first lives.
        led.on_retransmit(&f);
        led.on_inject(&f, NodeId(0), 150, &mut v);
        assert!(v.is_empty(), "sanctioned duplicate injection: {v:?}");
        // Both instances arrive; the engine suppresses the second delivery.
        led.on_eject(&f, NodeId(3), 160, &mut v);
        led.on_eject(&f, NodeId(3), 170, &mut v);
        assert!(v.is_empty(), "sanctioned duplicate delivery: {v:?}");
        led.finalize(200, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsanctioned_reinjection_is_still_a_duplicate() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = sequenced_flit(1, 0, 3, 1);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_inject(&f, NodeId(0), 2, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Duplicate);
    }

    #[test]
    fn unflushed_flit_is_a_leak() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        led.on_inject(&flit(1, 0, 3), NodeId(0), 1, &mut v);
        led.finalize(50, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Leak);
        assert_eq!(v[0].flits, vec![(1, 0)]);
    }
}

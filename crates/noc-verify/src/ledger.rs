//! Global flit ledger: conservation and no-duplication accounting.
//!
//! Tracks the lifecycle of every flit the network accepts: injected →
//! in-flight (at some router or on a link) → ejected exactly once, or
//! dropped with a recorded reason (SCARAB). Any flit observed outside this
//! lifecycle — ejected twice, arriving without having been injected,
//! ejected at the wrong node — is a violation.

use crate::violation::{FlitId, Violation, ViolationKind};
use noc_core::flit::Flit;
use noc_core::types::{Cycle, NodeId};
use std::collections::{HashMap, HashSet};

/// Where a live flit was last seen.
#[derive(Debug, Clone, Copy)]
pub struct FlitPos {
    /// Router where the flit was last observed (inside it or leaving it).
    pub node: NodeId,
    /// Cycle of the last observation.
    pub since: Cycle,
    pub src: NodeId,
    pub dst: NodeId,
}

/// Ledger of every flit the network has accepted.
#[derive(Debug, Default)]
pub struct FlitLedger {
    /// Injected but not yet ejected or dropped.
    in_flight: HashMap<FlitId, FlitPos>,
    /// Dropped (SCARAB) and awaiting retransmission; a retransmitted copy
    /// re-enters `in_flight` via a fresh injection observation.
    dropped: HashSet<FlitId>,
    /// Delivered at their destination. A flit may be dropped and
    /// retransmitted many times but delivered only once.
    ejected: HashSet<FlitId>,
    injected_total: u64,
    ejected_total: u64,
    dropped_total: u64,
}

fn id(f: &Flit) -> FlitId {
    (f.packet.0, f.flit_index)
}

impl FlitLedger {
    pub fn new() -> FlitLedger {
        FlitLedger::default()
    }

    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    pub fn counts(&self) -> (u64, u64, u64) {
        (self.injected_total, self.ejected_total, self.dropped_total)
    }

    /// Iterate over live flits (for stuck-flit reports and heatmaps).
    pub fn live(&self) -> impl Iterator<Item = (&FlitId, &FlitPos)> {
        self.in_flight.iter()
    }

    /// A flit left the injection queue at `node`.
    pub fn on_inject(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        self.injected_total += 1;
        // A retransmission of a dropped flit is a legal re-injection.
        self.dropped.remove(&fid);
        if self.ejected.contains(&fid) {
            out.push(Violation {
                kind: ViolationKind::Duplicate,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: "flit re-injected after delivery".into(),
            });
            return;
        }
        if let Some(prev) = self.in_flight.insert(
            fid,
            FlitPos {
                node,
                since: cycle,
                src: f.src,
                dst: f.dst,
            },
        ) {
            out.push(Violation {
                kind: ViolationKind::Duplicate,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: format!(
                    "flit injected while already in flight (last seen at {} cycle {})",
                    prev.node, prev.since
                ),
            });
        }
    }

    /// A flit arrived on a link input of `node`: refresh its position.
    pub fn on_arrival(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        match self.in_flight.get_mut(&fid) {
            Some(pos) => {
                pos.node = node;
                pos.since = cycle;
            }
            None => {
                let detail = if self.ejected.contains(&fid) {
                    "delivered flit re-appeared on a link"
                } else if self.dropped.contains(&fid) {
                    "dropped flit re-appeared on a link without retransmission"
                } else {
                    "flit on a link was never injected"
                };
                out.push(Violation {
                    kind: ViolationKind::Phantom,
                    cycle,
                    router: Some(node),
                    flits: vec![fid],
                    detail: detail.into(),
                });
            }
        }
    }

    /// A flit was ejected to the PE at `node`.
    pub fn on_eject(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        self.ejected_total += 1;
        if f.dst != node {
            out.push(Violation {
                kind: ViolationKind::WrongEjectNode,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: format!("ejected at {} but destined for {}", node, f.dst),
            });
        }
        if self.in_flight.remove(&fid).is_none() {
            let detail = if self.ejected.contains(&fid) {
                "flit ejected twice"
            } else {
                "ejected flit was never injected"
            };
            out.push(Violation {
                kind: if self.ejected.contains(&fid) {
                    ViolationKind::Duplicate
                } else {
                    ViolationKind::Phantom
                },
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: detail.into(),
            });
        }
        if !self.ejected.insert(fid) {
            // Second insert: already reported above as Duplicate.
        }
    }

    /// A flit was dropped at `node` (legal only for dropping designs; the
    /// oracle checks the profile before calling this).
    pub fn on_drop(&mut self, f: &Flit, node: NodeId, cycle: Cycle, out: &mut Vec<Violation>) {
        let fid = id(f);
        self.dropped_total += 1;
        if self.in_flight.remove(&fid).is_none() && !self.dropped.contains(&fid) {
            out.push(Violation {
                kind: ViolationKind::Phantom,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: "dropped flit was not in flight".into(),
            });
        }
        self.dropped.insert(fid);
    }

    /// End-of-run check: nothing may still be in flight once the network
    /// reports quiescent. Dropped flits whose packet was never delivered
    /// count as leaks too (the engine retransmits until delivery).
    pub fn finalize(&self, cycle: Cycle, out: &mut Vec<Violation>) {
        if !self.in_flight.is_empty() {
            let mut flits: Vec<FlitId> = self.in_flight.keys().copied().collect();
            flits.sort_unstable();
            out.push(Violation {
                kind: ViolationKind::Leak,
                cycle,
                router: None,
                flits,
                detail: format!(
                    "{} flit(s) still in flight after drain",
                    self.in_flight.len()
                ),
            });
        }
        let undelivered: Vec<FlitId> = self
            .dropped
            .iter()
            .filter(|fid| !self.ejected.contains(*fid))
            .copied()
            .collect();
        if !undelivered.is_empty() {
            let mut flits = undelivered;
            flits.sort_unstable();
            out.push(Violation {
                kind: ViolationKind::Leak,
                cycle,
                router: None,
                flits: flits.clone(),
                detail: format!(
                    "{} dropped flit(s) never retransmitted to delivery",
                    flits.len()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::flit::PacketId;

    fn flit(pid: u64, src: u16, dst: u16) -> Flit {
        Flit::synthetic(PacketId(pid), NodeId(src), NodeId(dst), 0)
    }

    #[test]
    fn normal_lifecycle_is_clean() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_arrival(&f, NodeId(1), 3, &mut v);
        led.on_arrival(&f, NodeId(3), 5, &mut v);
        led.on_eject(&f, NodeId(3), 5, &mut v);
        led.finalize(10, &mut v);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(led.counts(), (1, 1, 0));
    }

    #[test]
    fn double_ejection_is_duplicate() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_eject(&f, NodeId(3), 5, &mut v);
        led.on_eject(&f, NodeId(3), 6, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Duplicate);
    }

    #[test]
    fn phantom_arrival_is_flagged() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        led.on_arrival(&flit(9, 0, 3), NodeId(1), 4, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Phantom);
    }

    #[test]
    fn wrong_destination_ejection_is_flagged() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_eject(&f, NodeId(2), 5, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::WrongEjectNode);
    }

    #[test]
    fn drop_and_retransmit_is_legal_but_leak_without_delivery() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        let f = flit(1, 0, 3);
        led.on_inject(&f, NodeId(0), 1, &mut v);
        led.on_drop(&f, NodeId(1), 3, &mut v);
        assert!(v.is_empty());
        // Never retransmitted: finalize reports a leak.
        led.finalize(100, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Leak);
        // Retransmit + deliver clears it.
        v.clear();
        led.on_inject(&f, NodeId(0), 10, &mut v);
        led.on_eject(&f, NodeId(3), 14, &mut v);
        led.finalize(100, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unflushed_flit_is_a_leak() {
        let mut led = FlitLedger::new();
        let mut v = Vec::new();
        led.on_inject(&flit(1, 0, 3), NodeId(0), 1, &mut v);
        led.finalize(50, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Leak);
        assert_eq!(v[0].flits, vec![(1, 0)]);
    }
}

//! Runtime invariant oracles and an exhaustive allocator
//! micro-model-checker for the DXbar NoC reproduction.
//!
//! Two halves:
//!
//! * **Runtime oracles** ([`oracle::Verifier`]) — a cheap per-cycle
//!   [`noc_sim::RunObserver`] checking flit conservation/no-duplication,
//!   crossbar exclusivity, route legality, FIFO capacity bounds, the
//!   fairness-counter service guarantee, and a deadlock/livelock watchdog.
//!   Attach via [`runner::run_verified`], or enable everywhere with the
//!   `DXBAR_VERIFY=1` environment variable / `--verify` bench flags.
//! * **Micro-model-checker** ([`checker`]) — exhaustive state-space
//!   enumeration over single-router allocator configurations (DXbar's
//!   greedy 4x5 primary and 5x5 secondary allocation, and the unified
//!   design's separable dual-input allocator with two serial V:1 arbiters
//!   plus the conflict-free swap), asserting no grant conflicts, work
//!   conservation, and swap-logic correctness. Runs as ordinary
//!   `cargo test -p noc-verify`. The [`zoo`] module extends the same
//!   treatment to the router zoo: differential model-checking of the DAMQ
//!   shared-slab allocator (no slot double-grant, free-list conservation,
//!   work conservation at saturation) and of MinBD's ejection/redirection
//!   priority logic (silver election, single-step invariants).
//!
//! Violations carry structured context ([`violation::Violation`]: cycle,
//! router, flit ids) and surface as `Err` from the verified runner.

pub mod checker;
pub mod ledger;
pub mod oracle;
pub mod profile;
pub mod runner;
pub mod violation;
pub mod zoo;

pub use checker::{CheckError, CheckerReport};
pub use ledger::FlitLedger;
pub use oracle::{CheckCounts, Verifier, VerifyOptions, VerifyReport};
pub use profile::{DesignProfile, RouteRule};
pub use runner::{run_traced_verified, run_verified, run_verified_with, VerifyError};
pub use violation::{Violation, ViolationKind};

/// Whether `DXBAR_VERIFY` asks for verified runs ("1" or "true"). The
/// campaign engine and the CLI bins all share this switch.
pub fn verify_from_env() -> bool {
    std::env::var("DXBAR_VERIFY")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

/// Cache namespace for results produced under a given verification mode.
///
/// Verified and unverified results must never share cache entries: a
/// verified hit asserts "this result passed the oracle suite when it was
/// stored", which an unverified run cannot claim. The campaign engine and
/// the daemon both derive their cache salt through this single function, so
/// per-job `--verify` choices (the daemon runs verified and unverified jobs
/// against one cache directory concurrently) land in disjoint namespaces by
/// construction.
pub fn cache_namespace(code_salt: &str, verify: bool) -> String {
    if verify {
        format!("{code_salt}+verify")
    } else {
        code_salt.to_string()
    }
}

#[cfg(test)]
mod namespace_tests {
    use super::cache_namespace;

    #[test]
    fn verified_namespace_is_disjoint_and_stable() {
        assert_eq!(cache_namespace("v3", false), "v3");
        assert_eq!(cache_namespace("v3", true), "v3+verify");
        assert_ne!(cache_namespace("v3", true), cache_namespace("v3", false));
        // A salt that already names a verified namespace stays stable under
        // the unverified mapping (no accidental double suffixing elsewhere).
        assert_eq!(cache_namespace("v3+verify", false), "v3+verify");
    }
}

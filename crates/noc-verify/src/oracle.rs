//! The runtime verifier: a [`RunObserver`] implementing the paper-level
//! invariant oracles.
//!
//! Checked every cycle, for every router, in release builds:
//!
//! * **Flit conservation** — per-router flow equation (flits in + buffered
//!   before = flits out + buffered after) and a global ledger proving every
//!   injected flit is ejected exactly once or dropped with a recorded
//!   reason (and later retransmitted to delivery).
//! * **Crossbar exclusivity** — at most one allocator grant per output
//!   column, at most one ejection per cycle, and at most one grant per
//!   input slot; two same-input winners only where the design provides a
//!   second path (DXbar's secondary crossbar, the unified design's
//!   segmented-output dual grant).
//! * **Route legality** — every link hop obeys the design's routing rule
//!   (DOR/WF turn model, minimal-adaptive for SCARAB), including during
//!   fault-degraded operation.
//! * **FIFO bounds** — secondary FIFOs never exceed their depth; router
//!   occupancy never exceeds the design's storage.
//! * **Fairness** — when the fairness counter flips priority to the
//!   buffered side, an eligible waiter must actually win that round.
//! * **Progress watchdog** — if no flit ejects for a bounded horizon while
//!   flits remain in flight, the run is declared deadlocked (nothing moved)
//!   or livelocked (flits moved but none arrived), with a stuck-flit report
//!   and a mesh heatmap.

use crate::ledger::FlitLedger;
use crate::profile::{DesignProfile, RouteRule};
use crate::violation::{FlitId, Violation, ViolationKind};
use noc_core::flit::Flit;
use noc_core::types::{Cycle, Direction, NodeId, LINK_DIRECTIONS};
use noc_routing::is_productive;
use noc_sim::diagnostics::NodeField;
use noc_sim::verify::{ProbeEvent, RunObserver, StepInputs};
use noc_sim::{Network, StepCtx};
use noc_topology::Mesh;
use std::any::Any;
use std::collections::HashMap;

/// Tunables for the runtime oracles.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Cycles without a single network-wide ejection (while flits are in
    /// flight) before the watchdog declares deadlock/livelock.
    pub watchdog_horizon: u64,
    /// Maximum violations kept with full context; further violations are
    /// counted but not stored.
    pub max_recorded: usize,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            watchdog_horizon: 2048,
            max_recorded: 32,
        }
    }
}

/// How many of each check the verifier actually performed — so a "zero
/// violations" report can prove the oracles were exercised, not skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounts {
    pub cycles: u64,
    pub router_steps: u64,
    pub conservation: u64,
    pub route_hops: u64,
    pub grants: u64,
    pub fifo_samples: u64,
    pub fairness_flips: u64,
    /// CRC verdicts recomputed on sequenced ejections.
    pub crc_checks: u64,
    /// Transit faults observed (corruptions + losses).
    pub transit_faults: u64,
    /// Recovery-protocol events observed (rejects, retransmits, give-ups).
    pub recovery_events: u64,
}

impl CheckCounts {
    /// Total individual oracle checks performed (for aggregate reporting;
    /// `cycles` and `router_steps` are bookkeeping, not checks).
    pub fn total(&self) -> u64 {
        self.conservation
            + self.route_hops
            + self.grants
            + self.fifo_samples
            + self.fairness_flips
            + self.crc_checks
    }
}

/// Outcome of a verified run.
#[derive(Debug)]
pub struct VerifyReport {
    /// Design label the profile was derived from.
    pub design: String,
    /// Recorded violations (capped at `VerifyOptions::max_recorded`).
    pub violations: Vec<Violation>,
    /// Total violations observed, including unrecorded ones.
    pub total_violations: u64,
    pub checks: CheckCounts,
    /// Ledger totals: (injected, ejected, dropped).
    pub flit_counts: (u64, u64, u64),
    /// Ledger resilience totals: (transit-lost, crc-bounced, counted-lost).
    pub recovery_counts: (u64, u64, u64),
}

impl VerifyReport {
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// One-paragraph summary suitable for logs and campaign manifests.
    pub fn summary(&self) -> String {
        let c = &self.checks;
        let mut s = format!(
            "verify[{}]: {} violation(s) over {} cycles ({} router-steps; \
             {} conservation, {} route-hop, {} grant, {} fifo, {} fairness checks; \
             {} injected / {} ejected / {} dropped)",
            self.design,
            self.total_violations,
            c.cycles,
            c.router_steps,
            c.conservation,
            c.route_hops,
            c.grants,
            c.fifo_samples,
            c.fairness_flips,
            self.flit_counts.0,
            self.flit_counts.1,
            self.flit_counts.2,
        );
        if c.crc_checks + c.transit_faults + c.recovery_events > 0 {
            s.push_str(&format!(
                "\nresilience: {} crc check(s), {} transit fault(s), {} recovery event(s); \
                 {} transit-lost / {} crc-bounced / {} counted-lost",
                c.crc_checks,
                c.transit_faults,
                c.recovery_events,
                self.recovery_counts.0,
                self.recovery_counts.1,
                self.recovery_counts.2,
            ));
        }
        for v in self.violations.iter().take(8) {
            s.push('\n');
            s.push_str(&v.to_string());
        }
        if self.violations.len() > 8 {
            s.push_str(&format!(
                "\n... and {} more recorded violation(s)",
                self.violations.len() - 8
            ));
        }
        s
    }
}

/// The runtime oracle set. Attach with [`Network::set_observer`] (or use
/// [`crate::runner::run_verified`]) and collect the [`VerifyReport`] with
/// [`Verifier::finalize`] after the run.
pub struct Verifier {
    design: String,
    /// Oracle profile per node. Homogeneous networks repeat one profile;
    /// heterogeneous router mixes give each node the profile of the
    /// design actually running there.
    profiles: Vec<DesignProfile>,
    buffer_depth: usize,
    mesh: Mesh,
    opts: VerifyOptions,
    ledger: FlitLedger,
    violations: Vec<Violation>,
    total_violations: u64,
    checks: CheckCounts,
    // Watchdog state.
    last_progress: Cycle,
    moved_since_progress: bool,
    ejected_this_cycle: bool,
    watchdog_tripped: bool,
    finalized: bool,
    // Resilience oracles.
    current_cycle: Cycle,
    /// Outstanding corrupted instances per flit identity (taint): +1 per
    /// transit corruption, resolved by a CRC reject or a transit loss.
    tainted: HashMap<FlitId, u32>,
    /// Bad-CRC ejections seen this cycle that the engine has not yet
    /// confirmed rejecting; any remnant at cycle end is a silent
    /// corruption (the engine delivered a corrupt flit).
    pending_crc_rejects: Vec<(FlitId, NodeId)>,
}

impl Verifier {
    /// Oracle set for `design_name` (a `RouterModel::design_name` string)
    /// on `mesh` with per-FIFO `buffer_depth`.
    pub fn new(design_name: &str, mesh: Mesh, buffer_depth: usize) -> Verifier {
        Verifier::with_options(design_name, mesh, buffer_depth, VerifyOptions::default())
    }

    pub fn with_options(
        design_name: &str,
        mesh: Mesh,
        buffer_depth: usize,
        opts: VerifyOptions,
    ) -> Verifier {
        let profile = DesignProfile::for_design(design_name, buffer_depth);
        Verifier {
            design: design_name.to_string(),
            profiles: vec![profile; mesh.num_nodes()],
            buffer_depth,
            mesh,
            opts,
            ledger: FlitLedger::new(),
            violations: Vec::new(),
            total_violations: 0,
            checks: CheckCounts::default(),
            last_progress: 0,
            moved_since_progress: false,
            ejected_this_cycle: false,
            watchdog_tripped: false,
            finalized: false,
            current_cycle: 0,
            tainted: HashMap::new(),
            pending_crc_rejects: Vec::new(),
        }
    }

    /// Oracle set matched to `net`'s actual routers: per-node profiles, so
    /// heterogeneous fabrics enforce each node's own design rules (a BLESS
    /// node may deflect; its buffered-island neighbour may not).
    pub fn for_network<R: noc_sim::RouterModel>(net: &Network<R>, opts: VerifyOptions) -> Verifier {
        let label = if net.is_homogeneous() {
            net.design_name().to_string()
        } else {
            format!("{} + islands", net.design_name())
        };
        let mut v = Verifier::with_options(&label, *net.mesh(), net.config().buffer_depth, opts);
        for node in v.mesh.nodes() {
            v.set_node_profile(node, net.router_design_name(node));
        }
        v
    }

    /// Override one node's oracle profile by design name.
    pub fn set_node_profile(&mut self, node: NodeId, design_name: &str) {
        self.profiles[node.index()] = DesignProfile::for_design(design_name, self.buffer_depth);
    }

    /// The node-0 profile (homogeneous networks: the only profile).
    pub fn profile(&self) -> &DesignProfile {
        &self.profiles[0]
    }

    /// The oracle profile enforced at `node`.
    pub fn node_profile(&self, node: NodeId) -> &DesignProfile {
        &self.profiles[node.index()]
    }

    fn push(&mut self, v: Violation) {
        self.total_violations += 1;
        if self.violations.len() < self.opts.max_recorded {
            self.violations.push(v);
        }
    }

    fn check_route_hop(&mut self, node: NodeId, dir: Direction, dst: NodeId, cycle: Cycle) {
        self.checks.route_hops += 1;
        let route = self.profiles[node.index()].route;
        let legal = match route {
            RouteRule::Turn(alg) => alg.route(&self.mesh, node, dst).contains(dir),
            RouteRule::MinimalAdaptive => is_productive(&self.mesh, node, dst, dir),
            RouteRule::Deflecting | RouteRule::Any => true,
        };
        if !legal {
            let rule = match route {
                RouteRule::Turn(alg) => alg.name(),
                RouteRule::MinimalAdaptive => "minimal-adaptive",
                _ => unreachable!(),
            };
            self.push(Violation {
                kind: ViolationKind::RouteIllegal,
                cycle,
                router: Some(node),
                flits: vec![],
                detail: format!("hop {dir} toward {dst} violates the {rule} rule"),
            });
        }
    }

    fn check_probes(&mut self, node: NodeId, ctx: &StepCtx) {
        let profile = self.profiles[node.index()];
        // (input, slot) -> output, plus per-output winner counts.
        let mut out_winners: [u8; 5] = [0; 5];
        let mut input_grants: HashMap<u8, Vec<(u8, u8)>> = HashMap::new();
        for ev in ctx.probe.events() {
            match *ev {
                ProbeEvent::Grant {
                    input,
                    slot,
                    output,
                } => {
                    self.checks.grants += 1;
                    if (output as usize) < out_winners.len() {
                        out_winners[output as usize] += 1;
                    }
                    input_grants.entry(input).or_default().push((slot, output));
                }
                ProbeEvent::FifoDepth { input, depth, cap } => {
                    self.checks.fifo_samples += 1;
                    let hard_cap = profile
                        .fifo_capacity
                        .map_or(cap as usize, |c| c.min(cap as usize));
                    if depth as usize > hard_cap {
                        self.push(Violation {
                            kind: ViolationKind::FifoOverflow,
                            cycle: ctx.cycle,
                            router: Some(node),
                            flits: vec![],
                            detail: format!(
                                "FIFO {input} holds {depth} flits, capacity {hard_cap}"
                            ),
                        });
                    }
                }
                ProbeEvent::FairnessFlip {
                    eligible_waiter,
                    waiter_won,
                } => {
                    self.checks.fairness_flips += 1;
                    if eligible_waiter && !waiter_won {
                        self.push(Violation {
                            kind: ViolationKind::FairnessStarvation,
                            cycle: ctx.cycle,
                            router: Some(node),
                            flits: vec![],
                            detail: "fairness counter flipped priority but no eligible \
                                     buffered flit was served"
                                .into(),
                        });
                    }
                }
            }
        }
        for (o, &n) in out_winners.iter().enumerate() {
            if n > 1 {
                self.push(Violation {
                    kind: ViolationKind::Exclusivity,
                    cycle: ctx.cycle,
                    router: Some(node),
                    flits: vec![],
                    detail: format!(
                        "{n} allocator grants on output {}",
                        Direction::from_index(o)
                    ),
                });
            }
        }
        for (input, grants) in input_grants {
            if grants.len() <= 1 {
                continue;
            }
            let dual_ok = profile.dual_input
                && grants.len() == 2
                && grants[0].0 != grants[1].0
                && grants[0].1 != grants[1].1;
            if !dual_ok {
                self.push(Violation {
                    kind: ViolationKind::Exclusivity,
                    cycle: ctx.cycle,
                    router: Some(node),
                    flits: vec![],
                    detail: format!(
                        "{} grants for input row {input} (slots/outputs {:?})",
                        grants.len(),
                        grants
                    ),
                });
            }
        }
    }

    fn trip_watchdog(&mut self, cycle: Cycle, in_flight: usize) {
        self.watchdog_tripped = true;
        let kind = if self.moved_since_progress {
            ViolationKind::Livelock
        } else {
            ViolationKind::Deadlock
        };
        // Oldest-stuck flits first.
        let mut stuck: Vec<_> = self.ledger.live().map(|(fid, pos)| (*fid, *pos)).collect();
        stuck.sort_unstable_by_key(|(fid, pos)| (pos.since, *fid));
        let mut detail = format!(
            "no ejection for {} cycles with {} flit(s) in flight ({})",
            self.opts.watchdog_horizon,
            in_flight,
            if kind == ViolationKind::Livelock {
                "flits still moving: livelock"
            } else {
                "nothing moved: deadlock"
            }
        );
        for (fid, pos) in stuck.iter().take(8) {
            detail.push_str(&format!(
                "\n  flit {}.{} stuck at {} since cycle {} ({} -> {})",
                fid.0, fid.1, pos.node, pos.since, pos.src, pos.dst
            ));
        }
        if stuck.len() > 8 {
            detail.push_str(&format!("\n  ... and {} more", stuck.len() - 8));
        }
        let mut per_node: HashMap<NodeId, f64> = HashMap::new();
        for (_, pos) in &stuck {
            *per_node.entry(pos.node).or_default() += 1.0;
        }
        let field = NodeField::sample("stuck flits", &self.mesh, |n| {
            per_node.get(&n).copied().unwrap_or(0.0)
        });
        detail.push('\n');
        detail.push_str(&field.render());
        let flits = stuck.iter().map(|(fid, _)| *fid).take(32).collect();
        self.push(Violation {
            kind,
            cycle,
            router: None,
            flits,
            detail,
        });
    }

    /// Close out the run: end-of-run ledger checks (only when the network
    /// has drained), reassembly-duplicate check, and report assembly.
    pub fn finalize<R: noc_sim::RouterModel>(mut self, net: &Network<R>) -> VerifyReport {
        let cycle = net.cycle();
        if net.reassembly_duplicates() > 0 {
            self.push(Violation {
                kind: ViolationKind::ReassemblyDuplicate,
                cycle,
                router: None,
                flits: vec![],
                detail: format!(
                    "{} duplicate flit(s) reached reassembly",
                    net.reassembly_duplicates()
                ),
            });
        }
        if net.is_quiescent() {
            let mut out = Vec::new();
            self.ledger.finalize(cycle, &mut out);
            for v in out {
                self.push(v);
            }
            // Every injected corruption must have been detected (CRC reject
            // or transit loss) or its flit resolved as delivered-clean-copy
            // or counted lost. Outstanding taint on an unresolved flit means
            // the corruption silently vanished from the books.
            let mut escaped: Vec<FlitId> = self
                .tainted
                .iter()
                .filter(|&(fid, &n)| n > 0 && !self.ledger.resolved(*fid))
                .map(|(fid, _)| *fid)
                .collect();
            if !escaped.is_empty() {
                escaped.sort_unstable();
                self.push(Violation {
                    kind: ViolationKind::SilentCorruption,
                    cycle,
                    router: None,
                    flits: escaped,
                    detail: "injected corruption was neither detected nor counted lost".into(),
                });
            }
        }
        self.finalized = true;
        VerifyReport {
            design: self.design,
            violations: self.violations,
            total_violations: self.total_violations,
            checks: self.checks,
            flit_counts: self.ledger.counts(),
            recovery_counts: self.ledger.recovery_counts(),
        }
    }
}

impl RunObserver for Verifier {
    fn is_active(&self) -> bool {
        true
    }

    fn on_cycle_start(&mut self, cycle: Cycle) {
        self.ejected_this_cycle = false;
        self.current_cycle = cycle;
    }

    fn on_router_step(
        &mut self,
        node: NodeId,
        inputs: &StepInputs,
        ctx: &StepCtx,
        occupancy_before: usize,
        occupancy_after: usize,
    ) {
        self.checks.router_steps += 1;
        let cycle = ctx.cycle;
        let mut scratch = Vec::new();

        // Ledger: arrivals refresh position; accepted injections enter.
        for f in inputs.arrivals.iter().flatten() {
            self.ledger.on_arrival(f, node, cycle, &mut scratch);
        }
        if ctx.injected {
            match &inputs.injection {
                Some(f) => self.ledger.on_inject(f, node, cycle, &mut scratch),
                None => scratch.push(Violation {
                    kind: ViolationKind::Phantom,
                    cycle,
                    router: Some(node),
                    flits: vec![],
                    detail: "router claimed injection with no flit offered".into(),
                }),
            }
        }

        // Conservation: what entered must leave or stay buffered.
        self.checks.conservation += 1;
        let inflow = occupancy_before + inputs.arrivals_offered() + usize::from(ctx.injected);
        let outflow = occupancy_after + ctx.flits_out();
        if inflow != outflow {
            scratch.push(Violation {
                kind: ViolationKind::Conservation,
                cycle,
                router: Some(node),
                flits: vec![],
                detail: format!(
                    "occ {occupancy_before} + in {} + inj {} != occ {occupancy_after} + out {}",
                    inputs.arrivals_offered(),
                    usize::from(ctx.injected),
                    ctx.flits_out()
                ),
            });
        }
        if let Some(cap) = self.profiles[node.index()].router_capacity {
            if occupancy_after > cap {
                scratch.push(Violation {
                    kind: ViolationKind::FifoOverflow,
                    cycle,
                    router: Some(node),
                    flits: vec![],
                    detail: format!("router holds {occupancy_after} flits, capacity {cap}"),
                });
            }
        }

        // Every design ejects at most one flit per cycle (single PE port).
        if ctx.ejected.len() > 1 {
            scratch.push(Violation {
                kind: ViolationKind::Exclusivity,
                cycle,
                router: Some(node),
                flits: ctx
                    .ejected
                    .iter()
                    .map(|f| (f.packet.0, f.flit_index))
                    .collect(),
                detail: format!("{} flits ejected in one cycle", ctx.ejected.len()),
            });
        }
        for f in &ctx.ejected {
            // Independently recompute the CRC verdict on sequenced flits:
            // a bad-CRC ejection obliges the engine to confirm a reject
            // (checked at cycle end), robust to an engine that "forgets".
            if f.seq != 0 {
                self.checks.crc_checks += 1;
                if !f.crc_ok() {
                    self.pending_crc_rejects
                        .push(((f.packet.0, f.flit_index), node));
                }
            }
            self.ledger.on_eject(f, node, cycle, &mut scratch);
            self.ejected_this_cycle = true;
        }

        // Drops: legal only for dropping designs, and always ledgered.
        if !ctx.dropped.is_empty() && !self.profiles[node.index()].drops_allowed {
            scratch.push(Violation {
                kind: ViolationKind::Leak,
                cycle,
                router: Some(node),
                flits: ctx
                    .dropped
                    .iter()
                    .map(|f| (f.packet.0, f.flit_index))
                    .collect(),
                detail: format!("non-dropping design dropped {} flit(s)", ctx.dropped.len()),
            });
        }
        for f in &ctx.dropped {
            self.ledger.on_drop(f, node, cycle, &mut scratch);
        }

        // Route legality on every link output.
        for d in LINK_DIRECTIONS {
            if let Some(f) = &ctx.out_links[d.index()] {
                self.moved_since_progress = true;
                self.check_route_hop(node, d, f.dst, cycle);
            }
        }

        // Allocator-level probes (grants, FIFO depths, fairness flips).
        self.check_probes(node, ctx);

        for v in scratch {
            self.push(v);
        }
    }

    fn on_cycle_end(&mut self, cycle: Cycle, in_flight: usize) {
        self.checks.cycles += 1;
        // Every bad-CRC ejection must have been matched by an engine CRC
        // reject within the cycle; a remnant means the engine delivered a
        // corrupt flit to the PE.
        while let Some((fid, node)) = self.pending_crc_rejects.pop() {
            self.push(Violation {
                kind: ViolationKind::SilentCorruption,
                cycle,
                router: Some(node),
                flits: vec![fid],
                detail: "corrupt flit reached the ejection port without a CRC reject".into(),
            });
        }
        if self.ejected_this_cycle || in_flight == 0 {
            self.last_progress = cycle;
            self.moved_since_progress = false;
            self.watchdog_tripped = false;
        } else if !self.watchdog_tripped
            && cycle.saturating_sub(self.last_progress) >= self.opts.watchdog_horizon
        {
            self.trip_watchdog(cycle, in_flight);
        }
    }

    fn on_transit_corrupt(&mut self, _node: NodeId, _dir: Direction, flit: &Flit) {
        self.checks.transit_faults += 1;
        *self
            .tainted
            .entry((flit.packet.0, flit.flit_index))
            .or_insert(0) += 1;
    }

    fn on_transit_loss(&mut self, node: NodeId, _dir: Direction, flit: &Flit) {
        self.checks.transit_faults += 1;
        let fid = (flit.packet.0, flit.flit_index);
        // The vanished instance may have been a corrupted one; the loss
        // resolves one taint (recovery is tracked by the ledger either way).
        if let Some(n) = self.tainted.get_mut(&fid) {
            *n -= 1;
            if *n == 0 {
                self.tainted.remove(&fid);
            }
        }
        let mut scratch = Vec::new();
        self.ledger
            .on_transit_loss(flit, node, self.current_cycle, &mut scratch);
        for v in scratch {
            self.push(v);
        }
    }

    fn on_crc_reject(&mut self, node: NodeId, flit: &Flit) {
        self.checks.recovery_events += 1;
        let fid = (flit.packet.0, flit.flit_index);
        if let Some(i) = self
            .pending_crc_rejects
            .iter()
            .position(|&(f, n)| f == fid && n == node)
        {
            self.pending_crc_rejects.swap_remove(i);
        }
        // Detection resolves the corruption taint.
        if let Some(n) = self.tainted.get_mut(&fid) {
            *n -= 1;
            if *n == 0 {
                self.tainted.remove(&fid);
            }
        }
    }

    fn on_retransmit_queued(&mut self, flit: &Flit) {
        self.checks.recovery_events += 1;
        self.ledger.on_retransmit(flit);
    }

    fn on_flit_lost(&mut self, flit: &Flit) {
        self.checks.recovery_events += 1;
        self.ledger.on_lost(flit);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::flit::{Flit, PacketId};

    fn mk() -> Verifier {
        Verifier::new("DXbar DOR", Mesh::new(4, 4), 4)
    }

    fn flit(pid: u64, src: u16, dst: u16) -> Flit {
        Flit::synthetic(PacketId(pid), NodeId(src), NodeId(dst), 0)
    }

    fn step_ctx(cycle: Cycle) -> StepCtx {
        let mut ctx = StepCtx::new(cycle);
        ctx.probe.set_enabled(true);
        ctx
    }

    #[test]
    fn clean_forwarding_step_passes() {
        let mut v = mk();
        let f = flit(1, 0, 3);
        // Inject at n0, forward East (DOR-legal toward n3).
        let mut ctx = step_ctx(1);
        ctx.injected = true;
        ctx.out_links[Direction::East.index()] = Some(f);
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: Some(f),
        };
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert_eq!(v.total_violations, 0);
    }

    #[test]
    fn illegal_dor_hop_is_flagged() {
        let mut v = mk();
        let f = flit(1, 0, 3); // dst is due East of n0
        let mut ctx = step_ctx(1);
        ctx.injected = true;
        ctx.out_links[Direction::South.index()] = Some(f); // Y-first: illegal under DOR
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: Some(f),
        };
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert_eq!(v.total_violations, 1);
        assert_eq!(v.violations[0].kind, ViolationKind::RouteIllegal);
    }

    #[test]
    fn conservation_break_is_flagged() {
        let mut v = mk();
        let f = flit(1, 0, 3);
        let ctx = step_ctx(1); // arrival vanished: no output, occupancy unchanged
        let inputs = StepInputs {
            arrivals: [Some(f), None, None, None],
            injection: None,
        };
        v.on_router_step(NodeId(1), &inputs, &ctx, 0, 0);
        assert!(v
            .violations
            .iter()
            .any(|x| x.kind == ViolationKind::Conservation));
    }

    #[test]
    fn double_output_grant_is_exclusivity_violation() {
        let mut v = mk();
        let mut ctx = step_ctx(1);
        ctx.probe.emit(|| ProbeEvent::Grant {
            input: 0,
            slot: 0,
            output: 2,
        });
        ctx.probe.emit(|| ProbeEvent::Grant {
            input: 1,
            slot: 0,
            output: 2,
        });
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: None,
        };
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert!(v
            .violations
            .iter()
            .any(|x| x.kind == ViolationKind::Exclusivity));
    }

    #[test]
    fn dual_input_grant_legal_only_with_distinct_slots_and_outputs() {
        let mut v = mk(); // DXbar: dual_input = true
        let mut ctx = step_ctx(1);
        ctx.probe.emit(|| ProbeEvent::Grant {
            input: 0,
            slot: 0,
            output: 1,
        });
        ctx.probe.emit(|| ProbeEvent::Grant {
            input: 0,
            slot: 1,
            output: 2,
        });
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: None,
        };
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert_eq!(v.total_violations, 0, "{:?}", v.violations);

        // Same slot twice: always illegal.
        let mut ctx = step_ctx(2);
        ctx.probe.emit(|| ProbeEvent::Grant {
            input: 0,
            slot: 0,
            output: 1,
        });
        ctx.probe.emit(|| ProbeEvent::Grant {
            input: 0,
            slot: 0,
            output: 2,
        });
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert!(v
            .violations
            .iter()
            .any(|x| x.kind == ViolationKind::Exclusivity));
    }

    #[test]
    fn fifo_overflow_is_flagged() {
        let mut v = mk();
        let mut ctx = step_ctx(1);
        ctx.probe.emit(|| ProbeEvent::FifoDepth {
            input: 2,
            depth: 5,
            cap: 4,
        });
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: None,
        };
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert!(v
            .violations
            .iter()
            .any(|x| x.kind == ViolationKind::FifoOverflow));
    }

    #[test]
    fn fairness_flip_without_service_is_starvation() {
        let mut v = mk();
        let mut ctx = step_ctx(1);
        ctx.probe.emit(|| ProbeEvent::FairnessFlip {
            eligible_waiter: true,
            waiter_won: false,
        });
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: None,
        };
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 0);
        assert_eq!(v.total_violations, 1);
        assert_eq!(v.violations[0].kind, ViolationKind::FairnessStarvation);
    }

    #[test]
    fn watchdog_trips_deadlock_then_stays_quiet() {
        let mut v = Verifier::with_options(
            "DXbar DOR",
            Mesh::new(4, 4),
            4,
            VerifyOptions {
                watchdog_horizon: 10,
                max_recorded: 32,
            },
        );
        // A flit is injected then nothing ever moves again.
        let f = flit(7, 0, 3);
        let mut ctx = step_ctx(0);
        ctx.injected = true;
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: Some(f),
        };
        v.on_cycle_start(0);
        v.on_router_step(NodeId(0), &inputs, &ctx, 0, 1);
        v.on_cycle_end(0, 1);
        for t in 1..=12 {
            v.on_cycle_start(t);
            v.on_cycle_end(t, 1);
        }
        assert_eq!(v.total_violations, 1, "{:?}", v.violations);
        assert_eq!(v.violations[0].kind, ViolationKind::Deadlock);
        assert!(v.violations[0].detail.contains("stuck"));
    }

    #[test]
    fn ejections_reset_watchdog() {
        let mut v = Verifier::with_options(
            "DXbar DOR",
            Mesh::new(4, 4),
            4,
            VerifyOptions {
                watchdog_horizon: 10,
                max_recorded: 32,
            },
        );
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: None,
        };
        for t in 0..100 {
            v.on_cycle_start(t);
            if t % 5 == 0 {
                // A flit travels through and ejects regularly.
                let f = flit(t, 3, 3);
                let mut ctx = step_ctx(t);
                ctx.injected = true;
                let inj = StepInputs {
                    arrivals: [None; 4],
                    injection: Some(f),
                };
                let mut ectx = StepCtx::new(t);
                ectx.ejected.push(f);
                v.on_router_step(NodeId(3), &inj, &ctx, 0, 1);
                v.on_router_step(NodeId(3), &inputs, &ectx, 1, 0);
            }
            v.on_cycle_end(t, 1);
        }
        assert!(
            !v.violations
                .iter()
                .any(|x| matches!(x.kind, ViolationKind::Deadlock | ViolationKind::Livelock)),
            "{:?}",
            v.violations
        );
    }

    fn corrupt_sequenced_flit(pid: u64, src: u16, dst: u16, seq: u32) -> Flit {
        let mut f = flit(pid, src, dst);
        f.set_seq(seq);
        f.corrupt_payload(0b1);
        assert!(!f.crc_ok());
        f
    }

    fn inject_at(v: &mut Verifier, node: u16, f: Flit, cycle: Cycle) {
        let mut ctx = step_ctx(cycle);
        ctx.injected = true;
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: Some(f),
        };
        v.on_router_step(NodeId(node), &inputs, &ctx, 0, 1);
    }

    fn eject_at(v: &mut Verifier, node: u16, f: Flit, cycle: Cycle) {
        let mut ctx = step_ctx(cycle);
        ctx.ejected.push(f);
        let inputs = StepInputs {
            arrivals: [None; 4],
            injection: None,
        };
        v.on_router_step(NodeId(node), &inputs, &ctx, 1, 0);
    }

    #[test]
    fn corrupt_delivery_without_reject_is_silent_corruption() {
        // Evil-engine canary: a corrupt sequenced flit reaches the ejection
        // port and the engine never confirms a CRC reject.
        let mut v = mk();
        let f = corrupt_sequenced_flit(9, 3, 3, 5);
        v.on_cycle_start(0);
        inject_at(&mut v, 3, f, 0);
        eject_at(&mut v, 3, f, 0);
        v.on_cycle_end(0, 0);
        assert_eq!(v.total_violations, 1, "{:?}", v.violations);
        assert_eq!(v.violations[0].kind, ViolationKind::SilentCorruption);
        assert!(v.violations[0].detail.contains("without a CRC reject"));
        assert_eq!(v.checks.crc_checks, 1);
    }

    #[test]
    fn crc_reject_and_sanctioned_retransmit_are_clean() {
        // Honest recovery: bad-CRC ejection is rejected the same cycle, a
        // retransmission is sanctioned, and the clean copy delivers.
        let mut v = mk();
        let bad = corrupt_sequenced_flit(9, 3, 3, 5);
        v.on_cycle_start(0);
        inject_at(&mut v, 3, bad, 0);
        eject_at(&mut v, 3, bad, 0);
        v.on_crc_reject(NodeId(3), &bad);
        v.on_retransmit_queued(&bad);
        v.on_cycle_end(0, 0);

        let mut clean = flit(9, 3, 3);
        clean.set_seq(5);
        assert!(clean.crc_ok());
        v.on_cycle_start(1);
        inject_at(&mut v, 3, clean, 1);
        eject_at(&mut v, 3, clean, 1);
        v.on_cycle_end(1, 0);

        assert_eq!(v.total_violations, 0, "{:?}", v.violations);
        assert_eq!(v.checks.crc_checks, 2);
        assert_eq!(v.checks.recovery_events, 2);
    }

    #[test]
    fn transit_fault_hooks_track_taint_and_losses() {
        let mut v = mk();
        let mut f = flit(4, 0, 3);
        f.set_seq(2);
        v.on_cycle_start(0);
        inject_at(&mut v, 0, f, 0);
        let mut struck = f;
        struck.corrupt_payload(0b10);
        v.on_transit_corrupt(NodeId(0), Direction::East, &struck);
        assert_eq!(v.tainted.get(&(4, 0)), Some(&1));
        // The corrupted instance is then dropped in transit: the taint is
        // resolved by the loss, and the ledger starts tracking recovery.
        v.on_transit_loss(NodeId(0), Direction::East, &struck);
        assert!(v.tainted.is_empty());
        v.on_flit_lost(&struck);
        v.on_cycle_end(0, 0);
        assert_eq!(v.total_violations, 0, "{:?}", v.violations);
        assert_eq!(v.checks.transit_faults, 2);
        assert_eq!(v.checks.recovery_events, 1);
        assert_eq!(v.ledger.recovery_counts(), (1, 0, 1));
    }
}

//! Per-design verification profiles.
//!
//! Each router design promises a different set of invariants: DOR/WF
//! designs must obey their turn model, SCARAB may drop but never deflect,
//! BLESS/AFC may deflect but never drop. The oracles look up what to
//! enforce here, keyed by the design's report name.

use noc_routing::Algorithm;

/// Route-legality rule a design's link outputs must obey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteRule {
    /// Every hop must be in `Algorithm::route(mesh, node, dst)` — the
    /// DOR/WF turn-model set (DXbar, unified and buffered designs).
    Turn(Algorithm),
    /// Every hop must be productive (minimal), any dimension order
    /// (SCARAB: drops instead of deflecting).
    MinimalAdaptive,
    /// Hops may be unproductive (deflection routing: BLESS, AFC in
    /// bufferless mode). Only structural checks apply.
    Deflecting,
    /// Unknown design: skip route checks.
    Any,
}

/// What the runtime oracles enforce for one design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignProfile {
    /// Route-legality rule for link outputs.
    pub route: RouteRule,
    /// Maximum flits a router may hold (`occupancy()` bound); `None` when
    /// the design has no published bound.
    pub router_capacity: Option<usize>,
    /// Whether the crossbar may legally grant two winners from one input
    /// row (the unified design's segmented-output dual grant).
    pub dual_input: bool,
    /// Whether the design may drop flits (SCARAB). Non-dropping designs
    /// turn any `ctx.dropped` entry into a violation.
    pub drops_allowed: bool,
    /// Per-input secondary FIFO capacity checked against `FifoDepth`
    /// probes; `None` disables the check.
    pub fifo_capacity: Option<usize>,
    /// Whether fairness-flip probes are expected and checked.
    pub fairness_checked: bool,
}

impl DesignProfile {
    /// Profile for a design's report name (`RouterModel::design_name`).
    ///
    /// `buffer_depth` is `SimConfig::buffer_depth` (per-VC / per-FIFO
    /// slots). Unknown names get a permissive profile so third-party
    /// router models can still run under the universal checks.
    pub fn for_design(name: &str, buffer_depth: usize) -> DesignProfile {
        match name {
            "Flit-Bless" => DesignProfile {
                route: RouteRule::Deflecting,
                router_capacity: Some(0),
                dual_input: false,
                drops_allowed: false,
                fifo_capacity: None,
                fairness_checked: false,
            },
            "SCARAB" => DesignProfile {
                route: RouteRule::MinimalAdaptive,
                router_capacity: Some(0),
                dual_input: false,
                drops_allowed: true,
                fifo_capacity: None,
                fairness_checked: false,
            },
            // Buffered 4 = one VC per input; Buffered 8 = two VCs per
            // input; each VC FIFO holds `buffer_depth` flits, 5 inputs.
            "Buffered 4" => DesignProfile {
                route: RouteRule::Turn(Algorithm::Dor),
                router_capacity: Some(5 * buffer_depth),
                dual_input: false,
                drops_allowed: false,
                fifo_capacity: Some(buffer_depth),
                fairness_checked: false,
            },
            "Buffered 8" => DesignProfile {
                route: RouteRule::Turn(Algorithm::Dor),
                router_capacity: Some(5 * 2 * buffer_depth),
                dual_input: false,
                drops_allowed: false,
                fifo_capacity: Some(buffer_depth),
                fairness_checked: false,
            },
            "DXbar DOR" | "DXbar WF" => DesignProfile {
                route: RouteRule::Turn(if name.ends_with("WF") {
                    Algorithm::WestFirst
                } else {
                    Algorithm::Dor
                }),
                router_capacity: Some(4 * buffer_depth),
                // The arrival (primary crossbar) and the buffered head
                // (secondary crossbar) of the same input index may both
                // win — distinct physical paths, distinct outputs.
                dual_input: true,
                drops_allowed: false,
                fifo_capacity: Some(buffer_depth),
                fairness_checked: true,
            },
            "Unified Xbar DOR" | "Unified Xbar WF" => DesignProfile {
                route: RouteRule::Turn(if name.ends_with("WF") {
                    Algorithm::WestFirst
                } else {
                    Algorithm::Dor
                }),
                router_capacity: Some(4 * buffer_depth),
                dual_input: true,
                drops_allowed: false,
                fifo_capacity: Some(buffer_depth),
                fairness_checked: true,
            },
            "AFC" => DesignProfile {
                route: RouteRule::Deflecting,
                router_capacity: Some(4 * buffer_depth),
                dual_input: false,
                drops_allowed: false,
                fifo_capacity: Some(buffer_depth),
                fairness_checked: false,
            },
            // DAMQ: one shared slab of 4 * depth slots; minimal-preference
            // buffering but shared-pool exhaustion falls back to
            // deflection, so only structural route checks apply. The
            // FifoDepth probe reports per-VQ depth against the *slab*
            // capacity (queues legally outgrow `buffer_depth`), so the
            // profile leaves fifo_capacity unset.
            "DAMQ" => DesignProfile {
                route: RouteRule::Deflecting,
                router_capacity: Some(4 * buffer_depth),
                dual_input: false,
                drops_allowed: false,
                fifo_capacity: None,
                fairness_checked: false,
            },
            // MinBD: deflection datapath plus one side buffer of
            // `buffer_depth` slots.
            "MinBD" => DesignProfile {
                route: RouteRule::Deflecting,
                router_capacity: Some(buffer_depth),
                dual_input: false,
                drops_allowed: false,
                fifo_capacity: Some(buffer_depth),
                fairness_checked: false,
            },
            _ => DesignProfile {
                route: RouteRule::Any,
                router_capacity: None,
                dual_input: false,
                drops_allowed: true,
                fifo_capacity: None,
                fairness_checked: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dxbar_profiles_use_matching_turn_model() {
        let dor = DesignProfile::for_design("DXbar DOR", 4);
        let wf = DesignProfile::for_design("DXbar WF", 4);
        assert_eq!(dor.route, RouteRule::Turn(Algorithm::Dor));
        assert_eq!(wf.route, RouteRule::Turn(Algorithm::WestFirst));
        assert_eq!(dor.router_capacity, Some(16));
        assert!(dor.dual_input);
        assert!(dor.fairness_checked);
    }

    #[test]
    fn unified_allows_dual_input_grants() {
        let p = DesignProfile::for_design("Unified Xbar WF", 4);
        assert!(p.dual_input);
        assert_eq!(p.route, RouteRule::Turn(Algorithm::WestFirst));
        assert_eq!(p.fifo_capacity, Some(4));
    }

    #[test]
    fn scarab_may_drop_but_must_stay_minimal() {
        let p = DesignProfile::for_design("SCARAB", 4);
        assert!(p.drops_allowed);
        assert_eq!(p.route, RouteRule::MinimalAdaptive);
        assert_eq!(p.router_capacity, Some(0));
    }

    #[test]
    fn bless_deflects_and_holds_nothing() {
        let p = DesignProfile::for_design("Flit-Bless", 4);
        assert_eq!(p.route, RouteRule::Deflecting);
        assert_eq!(p.router_capacity, Some(0));
        assert!(!p.drops_allowed);
    }

    #[test]
    fn unknown_design_is_permissive() {
        let p = DesignProfile::for_design("Mystery Router", 4);
        assert_eq!(p.route, RouteRule::Any);
        assert_eq!(p.router_capacity, None);
        assert!(p.drops_allowed);
    }

    #[test]
    fn zoo_profiles_bound_their_buffers() {
        let damq = DesignProfile::for_design("DAMQ", 4);
        assert_eq!(damq.route, RouteRule::Deflecting);
        assert_eq!(damq.router_capacity, Some(16), "shared slab = 4 x depth");
        assert!(!damq.drops_allowed);
        let minbd = DesignProfile::for_design("MinBD", 4);
        assert_eq!(minbd.route, RouteRule::Deflecting);
        assert_eq!(minbd.router_capacity, Some(4), "one side buffer");
        assert_eq!(minbd.fifo_capacity, Some(4));
        assert!(!minbd.drops_allowed);
    }

    #[test]
    fn buffered_capacity_scales_with_vc_count() {
        assert_eq!(
            DesignProfile::for_design("Buffered 4", 4).router_capacity,
            Some(20)
        );
        assert_eq!(
            DesignProfile::for_design("Buffered 8", 4).router_capacity,
            Some(40)
        );
    }
}

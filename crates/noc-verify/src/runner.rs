//! Verified run orchestration: attach a [`Verifier`] to a network, execute a
//! run, then detach it and turn any recorded violations into an `Err`.
//!
//! Mirrors `noc_sim::run_traced`'s attach/run/detach shape so call sites can
//! switch between plain and verified runs without restructuring.

use crate::oracle::{Verifier, VerifyOptions, VerifyReport};
use noc_power::energy::EnergyModel;
use noc_sim::noc_trace::RecordingSink;
use noc_sim::report::RunResult;
use noc_sim::runner::RunMode;
use noc_sim::{Network, RouterModel};
use noc_traffic::generator::TrafficModel;

/// A verified run that observed at least one invariant violation. Carries
/// both the simulation result (the run itself completed) and the full
/// [`VerifyReport`] with structured violation records.
#[derive(Debug)]
pub struct VerifyError {
    /// The run's ordinary statistics — valid even though verification failed.
    pub result: RunResult,
    /// The report, including up to `max_recorded` structured violations.
    pub report: VerifyReport,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.report.summary())?;
        for v in &self.report.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Execute a run with the full runtime-oracle suite attached (default
/// [`VerifyOptions`]). Returns the run result together with the (clean)
/// verification report, or [`VerifyError`] if any invariant was violated.
pub fn run_verified<R: RouterModel>(
    net: &mut Network<R>,
    model: &mut dyn TrafficModel,
    mode: RunMode,
    energy: &EnergyModel,
) -> Result<(RunResult, VerifyReport), Box<VerifyError>> {
    run_verified_with(net, model, mode, energy, VerifyOptions::default())
}

/// [`run_verified`] with explicit [`VerifyOptions`] (watchdog horizon,
/// violation recording cap).
/// Execute a run with both the oracle suite and a recording trace sink
/// attached (the two are independent network attachments). Unlike
/// [`run_verified`], the report comes back unconditionally — callers that
/// also want the trace on a violating run check [`VerifyReport::is_clean`]
/// themselves.
pub fn run_traced_verified<R: RouterModel>(
    net: &mut Network<R>,
    model: &mut dyn TrafficModel,
    mode: RunMode,
    energy: &EnergyModel,
    sink: RecordingSink,
) -> (RunResult, RecordingSink, VerifyReport) {
    let verifier = Verifier::for_network(net, VerifyOptions::default());
    net.set_observer(Box::new(verifier));
    let (result, sink) = noc_sim::runner::run_traced(net, model, mode, energy, sink);
    let verifier = net
        .take_observer()
        .into_any()
        .downcast::<Verifier>()
        .expect("run_traced_verified attached a Verifier");
    let report = verifier.finalize(net);
    (result, sink, report)
}

pub fn run_verified_with<R: RouterModel>(
    net: &mut Network<R>,
    model: &mut dyn TrafficModel,
    mode: RunMode,
    energy: &EnergyModel,
    opts: VerifyOptions,
) -> Result<(RunResult, VerifyReport), Box<VerifyError>> {
    let verifier = Verifier::for_network(net, opts);
    net.set_observer(Box::new(verifier));
    let result = noc_sim::run(net, model, mode, energy);
    let verifier = net
        .take_observer()
        .into_any()
        .downcast::<Verifier>()
        .expect("run_verified attached a Verifier");
    let report = verifier.finalize(net);
    if report.is_clean() {
        Ok((result, report))
    } else {
        Err(Box::new(VerifyError { result, report }))
    }
}

//! Structured invariant violations.
//!
//! Every oracle failure carries enough context (cycle, router, flit
//! identities, a human-readable detail line) to localize the bug without
//! re-running under a debugger.

use noc_core::types::{Cycle, NodeId};
use std::fmt;

/// Identity of one flit: `(packet id, flit index)` — stable across hops,
/// buffering and retransmissions.
pub type FlitId = (u64, u8);

/// Which invariant was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Per-router, per-cycle flit conservation broke: flits entered a
    /// router and neither left nor stayed buffered (or appeared from
    /// nowhere).
    Conservation,
    /// A flit was ejected more than once, or re-appeared after delivery.
    Duplicate,
    /// A flit appeared in the network that was never injected (or a
    /// dropped flit re-appeared without a retransmission).
    Phantom,
    /// A flit was ejected at a node other than its destination.
    WrongEjectNode,
    /// A hop violated the design's routing rule (DOR/WF turn model, or
    /// minimal-adaptive productivity for SCARAB).
    RouteIllegal,
    /// Crossbar exclusivity broke: two winners on one output column, more
    /// than one ejection, or an illegal dual grant.
    Exclusivity,
    /// An input FIFO exceeded its capacity.
    FifoOverflow,
    /// The fairness counter flipped priority while an eligible waiter
    /// existed, yet no waiter was served.
    FairnessStarvation,
    /// No flit ejected for the watchdog horizon and nothing moved: the
    /// network is deadlocked.
    Deadlock,
    /// No flit ejected for the watchdog horizon although flits kept
    /// moving: a livelock (deflection pathology).
    Livelock,
    /// The reassembler observed duplicate flits.
    ReassemblyDuplicate,
    /// The network reports quiescent but the ledger still holds in-flight
    /// flits (or a design dropped flits it must not drop).
    Leak,
    /// A corrupted flit escaped detection: it reached the ejection port
    /// without a CRC reject, or an injected corruption was never detected
    /// nor counted lost by the end of the run.
    SilentCorruption,
}

impl ViolationKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::Conservation => "conservation",
            ViolationKind::Duplicate => "duplicate",
            ViolationKind::Phantom => "phantom",
            ViolationKind::WrongEjectNode => "wrong-eject-node",
            ViolationKind::RouteIllegal => "route-illegal",
            ViolationKind::Exclusivity => "exclusivity",
            ViolationKind::FifoOverflow => "fifo-overflow",
            ViolationKind::FairnessStarvation => "fairness-starvation",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Livelock => "livelock",
            ViolationKind::ReassemblyDuplicate => "reassembly-duplicate",
            ViolationKind::Leak => "leak",
            ViolationKind::SilentCorruption => "silent-corruption",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One oracle failure with its structured context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub kind: ViolationKind,
    pub cycle: Cycle,
    /// The router where the violation was observed (`None` for
    /// network-global violations such as the watchdog).
    pub router: Option<NodeId>,
    /// Flits involved (empty when not flit-specific).
    pub flits: Vec<FlitId>,
    /// Human-readable description (may span lines, e.g. a heatmap).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {}", self.kind, self.cycle)?;
        if let Some(node) = self.router {
            write!(f, " router {node}")?;
        }
        if !self.flits.is_empty() {
            let ids: Vec<String> = self
                .flits
                .iter()
                .take(8)
                .map(|(p, i)| format!("{p}.{i}"))
                .collect();
            write!(f, " flits [{}]", ids.join(", "))?;
            if self.flits.len() > 8 {
                write!(f, " (+{} more)", self.flits.len() - 8)?;
            }
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let v = Violation {
            kind: ViolationKind::Duplicate,
            cycle: 42,
            router: Some(NodeId(5)),
            flits: vec![(7, 0)],
            detail: "ejected twice".into(),
        };
        let s = v.to_string();
        assert!(s.contains("duplicate"));
        assert!(s.contains("cycle 42"));
        assert!(s.contains("7.0"));
        assert!(s.contains("ejected twice"));
    }

    #[test]
    fn kinds_have_unique_names() {
        let kinds = [
            ViolationKind::Conservation,
            ViolationKind::Duplicate,
            ViolationKind::Phantom,
            ViolationKind::WrongEjectNode,
            ViolationKind::RouteIllegal,
            ViolationKind::Exclusivity,
            ViolationKind::FifoOverflow,
            ViolationKind::FairnessStarvation,
            ViolationKind::Deadlock,
            ViolationKind::Livelock,
            ViolationKind::ReassemblyDuplicate,
            ViolationKind::Leak,
            ViolationKind::SilentCorruption,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}

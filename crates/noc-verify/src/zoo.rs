//! Model checkers for the router-zoo designs (crate `noc-zoo`).
//!
//! Two targets, treated the way [`crate::checker`] treats DXbar's
//! allocators — exhaustive enumeration against independently written
//! reference models:
//!
//! * **DAMQ shared-slab allocator** — every push/pop sequence over the
//!   five virtual queues is replayed differentially against a plain
//!   `VecDeque` reference that re-derives the reserved/shared budget rule.
//!   Checked per operation: admission agreement (work conservation — the
//!   slab never refuses while the budget admits — and the reserve guard —
//!   it never accepts beyond it), **no slot double-grant** (a granted slot
//!   index must be free), FIFO order and budget-tag agreement on pop,
//!   free-list conservation (live slots + free slots = capacity, matched
//!   against the reference occupancy), and the slab's own structural
//!   integrity walk. [`check_slab_saturation`] adds directed full-slab
//!   churn: filling round-robin may first refuse only at exact capacity,
//!   freed slots are immediately reusable, and a monopolised shared pool
//!   still leaves every empty queue its reserved slot.
//! * **MinBD ejection/redirection priority logic** — the silver election
//!   is checked property-based over every deflection-count/age
//!   permutation ([`check_silver_fn`]), and whole-router single-step
//!   enumeration ([`check_minbd_step_invariants`]) asserts, for every
//!   arrival/side-buffer/injection configuration: flit conservation, no
//!   drops, the one-ejection-per-cycle port bound with oldest-local
//!   priority, bounded side-buffer growth, and that the silver flit is
//!   never side-buffered and never deflected while it has a productive
//!   port.
//!
//! The generic entry points ([`check_slab_ops`], [`check_silver_fn`]) also
//! serve as mutation canaries: the test suite feeds them a seeded
//! double-grant slab and an inverted silver election and asserts each bug
//! is caught (see the `canary_*` tests).

use crate::checker::{CheckError, CheckerReport};
use noc_core::flit::{Flit, PacketId};
use noc_core::types::{Cycle, NodeId, LINK_DIRECTIONS};
use noc_routing::productive_ports;
use noc_sim::router::{RouterModel, StepCtx};
use noc_topology::Mesh;
use noc_zoo::slab::{SharedSlab, SlotBudget, NUM_VQS};
use noc_zoo::MinBdRouter;
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// DAMQ shared-slab allocator
// ---------------------------------------------------------------------------

/// One operation of a slab schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabOp {
    /// Offer a fresh flit to virtual queue `0..NUM_VQS`.
    Push(usize),
    /// Service the head of virtual queue `0..NUM_VQS`.
    Pop(usize),
}

/// The slab interface the differential checker drives. Implemented by the
/// real [`SharedSlab`]; the canary tests implement it with seeded bugs to
/// prove the checker catches them.
pub trait SlabModel {
    fn capacity(&self) -> usize;
    fn occupancy(&self) -> usize;
    fn push(&mut self, vq: usize, flit: Flit, ready: Cycle) -> Result<u32, Flit>;
    fn pop(&mut self, vq: usize) -> Option<(Flit, SlotBudget)>;
    fn check_integrity(&self) -> Result<(), String>;
}

impl SlabModel for SharedSlab {
    fn capacity(&self) -> usize {
        SharedSlab::capacity(self)
    }
    fn occupancy(&self) -> usize {
        SharedSlab::occupancy(self)
    }
    fn push(&mut self, vq: usize, flit: Flit, ready: Cycle) -> Result<u32, Flit> {
        SharedSlab::push(self, vq, flit, ready)
    }
    fn pop(&mut self, vq: usize) -> Option<(Flit, SlotBudget)> {
        SharedSlab::pop(self, vq)
    }
    fn check_integrity(&self) -> Result<(), String> {
        SharedSlab::check_integrity(self)
    }
}

/// Reference model: five plain FIFOs plus the budget rule, re-derived
/// from the DAMQ invariant ("one reserved slot per queue, the rest is a
/// shared pool of `capacity - NUM_VQS`") rather than from the slab's
/// linked-list mechanics.
struct RefSlab {
    cap: usize,
    /// Per queue: (tag, drew_reserved).
    queues: Vec<VecDeque<(u64, bool)>>,
    shared_used: usize,
}

impl RefSlab {
    fn new(cap: usize) -> RefSlab {
        RefSlab {
            cap,
            queues: vec![VecDeque::new(); NUM_VQS],
            shared_used: 0,
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// `Some(drew_reserved)` when the budget admits the push.
    fn push(&mut self, vq: usize, tag: u64) -> Option<bool> {
        let reserved = !self.queues[vq].iter().any(|&(_, r)| r);
        if reserved {
            self.queues[vq].push_back((tag, true));
            Some(true)
        } else if self.shared_used < self.cap - NUM_VQS {
            self.shared_used += 1;
            self.queues[vq].push_back((tag, false));
            Some(false)
        } else {
            None
        }
    }

    fn pop(&mut self, vq: usize) -> Option<(u64, bool)> {
        let (tag, reserved) = self.queues[vq].pop_front()?;
        if !reserved {
            self.shared_used -= 1;
        }
        Some((tag, reserved))
    }
}

/// Replay one schedule against `slab` and the reference in lockstep.
/// Returns the number of granted pushes, or the first property violation.
pub fn check_slab_ops<S: SlabModel>(slab: &mut S, ops: &[SlabOp]) -> Result<u64, CheckError> {
    let cap = slab.capacity();
    let mut reference = RefSlab::new(cap);
    // Which tag currently owns each slot index (None = free), and which
    // slot each granted tag was told it got.
    let mut live: Vec<Option<u64>> = vec![None; cap];
    let mut slot_of: Vec<u32> = vec![u32::MAX; ops.len()];
    let mut grants = 0u64;

    for (i, &op) in ops.iter().enumerate() {
        let err = |reason: String| CheckError {
            config: format!("{ops:?} at step {i} (capacity {cap})"),
            reason,
        };
        match op {
            SlabOp::Push(vq) => {
                let tag = i as u64;
                let flit = Flit::synthetic(PacketId(tag), NodeId(0), NodeId(1), tag as Cycle);
                let admitted = reference.push(vq, tag);
                match slab.push(vq, flit, tag as Cycle) {
                    Ok(slot) => {
                        grants += 1;
                        if admitted.is_none() {
                            return Err(err(
                                "slab accepted a push the budget refuses (reserve guard)".into(),
                            ));
                        }
                        let s = slot as usize;
                        if s >= cap {
                            return Err(err(format!("granted slot {slot} out of range")));
                        }
                        if let Some(prev) = live[s] {
                            return Err(err(format!(
                                "slot double-grant: slot {slot} granted to tag {tag} \
                                 while tag {prev} still holds it"
                            )));
                        }
                        live[s] = Some(tag);
                        slot_of[i] = slot;
                    }
                    Err(back) => {
                        if back.packet.0 != tag {
                            return Err(err("refused push returned a different flit".into()));
                        }
                        if admitted.is_some() {
                            return Err(err("slab refused a push the budget admits \
                                 (work conservation / empty-queue guarantee)"
                                .into()));
                        }
                    }
                }
            }
            SlabOp::Pop(vq) => match (slab.pop(vq), reference.pop(vq)) {
                (None, None) => {}
                (Some(_), None) => {
                    return Err(err(
                        "pop produced a flit from an empty reference queue".into()
                    ))
                }
                (None, Some(_)) => return Err(err("pop lost a queued flit".into())),
                (Some((flit, budget)), Some((tag, reserved))) => {
                    if flit.packet.0 != tag {
                        return Err(err(format!(
                            "FIFO order broken: popped tag {}, expected {tag}",
                            flit.packet.0
                        )));
                    }
                    if (budget == SlotBudget::Reserved) != reserved {
                        return Err(err(format!(
                            "budget tag disagrees with reference: got {budget:?}, \
                             expected reserved={reserved}"
                        )));
                    }
                    let slot = slot_of[tag as usize] as usize;
                    if live.get(slot).copied().flatten() != Some(tag) {
                        return Err(err(format!(
                            "freed slot {slot} was not live for tag {tag} (free-list corruption)"
                        )));
                    }
                    live[slot] = None;
                }
            },
        }
        // Free-list conservation: live + free = capacity, and both sides
        // agree with the reference occupancy.
        let live_count = live.iter().filter(|s| s.is_some()).count();
        if live_count != reference.occupancy() {
            return Err(err(format!(
                "occupancy diverged: {live_count} live slots vs reference {}",
                reference.occupancy()
            )));
        }
        if slab.occupancy() != live_count {
            return Err(err(format!(
                "slab occupancy {} disagrees with {live_count} live slots",
                slab.occupancy()
            )));
        }
        if let Err(e) = slab.check_integrity() {
            return Err(err(format!("integrity walk failed: {e}")));
        }
    }
    Ok(grants)
}

/// Number of distinct schedules of length `len` (alphabet = push/pop per
/// virtual queue).
pub fn slab_op_space(len: u32) -> u64 {
    (2 * NUM_VQS as u64).pow(len)
}

/// Decode schedule `idx` of [`slab_op_space`] into its operation list.
pub fn decode_slab_ops(mut idx: u64, len: u32) -> Vec<SlabOp> {
    let alphabet = 2 * NUM_VQS as u64;
    let mut ops = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let d = (idx % alphabet) as usize;
        idx /= alphabet;
        ops.push(if d < NUM_VQS {
            SlabOp::Push(d)
        } else {
            SlabOp::Pop(d - NUM_VQS)
        });
    }
    ops
}

/// Exhaust every push/pop schedule of length `len` against a fresh slab of
/// `capacity` slots. `10^len` schedules; `len = 6` with `capacity = 5`
/// reaches true saturation inside the enumeration.
pub fn check_slab_exhaustive(capacity: usize, len: u32) -> Result<CheckerReport, CheckError> {
    let alphabet = 2 * NUM_VQS as u64;
    let stride = slab_op_space(len) / alphabet;
    let firsts: Vec<u64> = (0..alphabet).collect();
    let chunks: Vec<Result<CheckerReport, CheckError>> = firsts
        .par_iter()
        .map(|&first| {
            let mut rep = CheckerReport {
                max_rounds: 1,
                ..Default::default()
            };
            for rest in 0..stride {
                let ops = decode_slab_ops(first * stride + rest, len);
                let mut slab = SharedSlab::new(capacity);
                rep.grants += check_slab_ops(&mut slab, &ops)?;
                rep.configs += 1;
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

/// Directed work-conservation checks at and around saturation, for slab
/// sizes the bounded enumeration cannot fill.
pub fn check_slab_saturation(capacity: usize) -> Result<CheckerReport, CheckError> {
    let err = |reason: String| CheckError {
        config: format!("saturation churn, capacity {capacity}"),
        reason,
    };
    let flit = |tag: u64| Flit::synthetic(PacketId(tag), NodeId(0), NodeId(1), tag as Cycle);
    let mut rep = CheckerReport {
        max_rounds: 1,
        ..Default::default()
    };

    // Round-robin fill: the first refusal may only happen with the slab
    // exactly full (5 reserved slots + the whole shared pool).
    let mut slab = SharedSlab::new(capacity);
    let mut tag = 0u64;
    'fill: loop {
        for vq in 0..NUM_VQS {
            match slab.push(vq, flit(tag), 0) {
                Ok(_) => {
                    tag += 1;
                    rep.grants += 1;
                    if tag as usize > capacity {
                        return Err(err("accepted more pushes than capacity".into()));
                    }
                }
                Err(_) => {
                    if slab.occupancy() != capacity {
                        return Err(err(format!(
                            "refused a push at occupancy {} of {capacity}",
                            slab.occupancy()
                        )));
                    }
                    break 'fill;
                }
            }
        }
    }
    slab.check_integrity()
        .map_err(|e| err(format!("integrity after fill: {e}")))?;

    // At saturation a freed slot must be immediately reusable.
    for _round in 0..3 {
        for vq in 0..NUM_VQS {
            let (f, _budget) = slab
                .pop(vq)
                .ok_or_else(|| err(format!("queue {vq} empty after round-robin fill")))?;
            if slab.push(vq, f, 0).is_err() {
                return Err(err(format!(
                    "freed slot not immediately reusable on queue {vq} (work conservation)"
                )));
            }
            rep.grants += 1;
            if slab.occupancy() != capacity {
                return Err(err("pop/push churn changed the occupancy".into()));
            }
        }
    }
    slab.check_integrity()
        .map_err(|e| err(format!("integrity after churn: {e}")))?;

    // Starvation guard: one queue monopolises the shared pool; every other
    // queue must still get its reserved slot, landing exactly at capacity.
    let mut slab = SharedSlab::new(capacity);
    let mut accepted = 0usize;
    while slab.push(0, flit(accepted as u64), 0).is_ok() {
        accepted += 1;
        rep.grants += 1;
    }
    if accepted != 1 + slab.shared_cap() {
        return Err(err(format!(
            "queue 0 absorbed {accepted} flits, expected 1 + shared pool of {}",
            slab.shared_cap()
        )));
    }
    for vq in 1..NUM_VQS {
        if slab.push(vq, flit(1000 + vq as u64), 0).is_err() {
            return Err(err(format!(
                "empty queue {vq} starved while holding a reserved slot"
            )));
        }
        rep.grants += 1;
    }
    if slab.occupancy() != capacity {
        return Err(err("reserved slots did not complete the slab".into()));
    }
    slab.check_integrity()
        .map_err(|e| err(format!("integrity after starvation probe: {e}")))?;

    rep.configs = 1;
    Ok(rep)
}

// ---------------------------------------------------------------------------
// MinBD silver election and step invariants
// ---------------------------------------------------------------------------

/// Check a silver-election function against the priority specification:
/// the winner carries the maximum deflection count, and among those the
/// oldest `age_key`. Enumerates every deflection assignment from
/// `{0, 1, 3}` and every age permutation for pipelines of up to four
/// flits.
pub fn check_silver_fn<F>(pick: F) -> Result<CheckerReport, CheckError>
where
    F: Fn(&[Flit]) -> Option<usize>,
{
    const DEFLS: [u16; 3] = [0, 1, 3];
    let mut rep = CheckerReport {
        max_rounds: 1,
        ..Default::default()
    };
    if pick(&[]).is_some() {
        return Err(CheckError {
            config: "empty pipeline".into(),
            reason: "silver elected from no candidates".into(),
        });
    }
    rep.configs += 1;

    for size in 1..=4usize {
        for perm in permutations(size) {
            for defl_idx in 0..DEFLS.len().pow(size as u32) {
                let mut actives = Vec::with_capacity(size);
                let mut d = defl_idx;
                for (i, &created) in perm.iter().enumerate() {
                    let mut f =
                        Flit::synthetic(PacketId(i as u64), NodeId(0), NodeId(1), created as Cycle);
                    f.deflections = DEFLS[d % DEFLS.len()];
                    d /= DEFLS.len();
                    actives.push(f);
                }
                rep.configs += 1;
                let err = |reason: String| CheckError {
                    config: format!("pipeline {actives:?}"),
                    reason,
                };
                let Some(win) = pick(&actives) else {
                    return Err(err("no silver elected from a non-empty pipeline".into()));
                };
                if win >= actives.len() {
                    return Err(err(format!("silver index {win} out of range")));
                }
                let s = actives[win];
                for f in &actives {
                    if f.deflections > s.deflections {
                        return Err(err(format!(
                            "silver priority inversion: winner has {} deflections, \
                             a rival has {}",
                            s.deflections, f.deflections
                        )));
                    }
                    if f.deflections == s.deflections && f.age_key() < s.age_key() {
                        return Err(err(
                            "silver priority inversion: an older equally-deflected \
                             rival lost the election"
                                .into(),
                        ));
                    }
                }
                rep.grants += 1;
            }
        }
    }
    Ok(rep)
}

/// The real router's silver election, against the specification.
pub fn check_silver_election() -> Result<CheckerReport, CheckError> {
    check_silver_fn(MinBdRouter::pick_silver)
}

/// All orderings of `0..n` (n <= 4: at most 24).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for sub in permutations(n - 1) {
        for pos in 0..=sub.len() {
            let mut p = sub.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// Exhaust single-step MinBD scenarios at a fully-linked 4x4 mesh node:
/// every arrival pattern over the four inputs (destination in
/// {local, neighbour, far corner, behind} x deflection count in {0, 3}),
/// crossed with four side-buffer pre-states (empty / ready head /
/// not-ready head / full) and an optional injection. Asserts, per step:
///
/// * flit conservation and no drops;
/// * at most one ejection, and the *oldest* local arrival is the one
///   ejected;
/// * the side buffer grows by at most one flit per cycle;
/// * the silver flit (per the election specification, over the
///   reconstructed pipeline) is never side-buffered and is granted a
///   productive port whenever it has one — the forward-progress guarantee
///   silver prioritization exists to provide.
pub fn check_minbd_step_invariants() -> Result<CheckerReport, CheckError> {
    let mesh = Mesh::new(4, 4);
    let node = NodeId(5); // (1,1): all four links live.
    let far = NodeId(15); // side-buffer occupants head for the far corner.
                          // Per-input variants: absent, or (dst, deflections).
    let dsts = [node, NodeId(6), NodeId(15), NodeId(0)];
    let variants_per_input = 1 + dsts.len() * 2; // 9
    let total = (variants_per_input as u64).pow(4); // 6561 arrival patterns

    let firsts: Vec<u64> = (0..variants_per_input as u64).collect();
    let stride = total / variants_per_input as u64;
    let chunks: Vec<Result<CheckerReport, CheckError>> = firsts
        .par_iter()
        .map(|&first| {
            let mut rep = CheckerReport {
                max_rounds: 1,
                ..Default::default()
            };
            for rest in 0..stride {
                let mut code = first * stride + rest;
                let mut arrivals: [Option<Flit>; 4] = [None; 4];
                for (d, slot) in arrivals.iter_mut().enumerate() {
                    let v = (code % variants_per_input as u64) as usize;
                    code /= variants_per_input as u64;
                    if v > 0 {
                        let mut f = Flit::synthetic(
                            PacketId(d as u64),
                            NodeId(10),
                            dsts[(v - 1) % dsts.len()],
                            d as Cycle,
                        );
                        f.deflections = if (v - 1) / dsts.len() == 0 { 0 } else { 3 };
                        *slot = Some(f);
                    }
                }
                for buf_state in 0..4 {
                    for inject in [false, true] {
                        rep.grants +=
                            check_minbd_one_step(&mesh, node, far, &arrivals, buf_state, inject)?;
                        rep.configs += 1;
                    }
                }
            }
            Ok(rep)
        })
        .collect();
    merge_reports(chunks)
}

/// Run and check one enumerated MinBD step. Returns the link-output count.
fn check_minbd_one_step(
    mesh: &Mesh,
    node: NodeId,
    far: NodeId,
    arrivals: &[Option<Flit>; 4],
    buf_state: usize,
    inject: bool,
) -> Result<u64, CheckError> {
    const CYCLE: Cycle = 10;
    let err = |reason: String| CheckError {
        config: format!("arrivals {arrivals:?}, buffer state {buf_state}, inject {inject}"),
        reason,
    };

    let mut r = MinBdRouter::new(node, *mesh, 4);
    // Side-buffer occupants are recognisable by their high packet ids.
    let parked = |i: u64| Flit::synthetic(PacketId(1000 + i), NodeId(10), far, 100 + i);
    match buf_state {
        0 => {}
        1 => assert!(r.preload(parked(0), 0)), // head ready to re-inject
        2 => assert!(r.preload(parked(0), 100)), // head still waiting
        _ => {
            for i in 0..4 {
                assert!(r.preload(parked(i), 100)); // full: forces redirection
            }
        }
    }
    let occ_before = r.occupancy();

    let mut ctx = StepCtx::new(CYCLE);
    ctx.arrivals = *arrivals;
    let inj = inject.then(|| Flit::synthetic(PacketId(99), node, NodeId(0), 9));
    ctx.injection = inj;
    r.step(&mut ctx);

    // Conservation and structural bounds.
    let arr_count = arrivals.iter().flatten().count();
    if occ_before + arr_count + usize::from(ctx.injected) != r.occupancy() + ctx.flits_out() {
        return Err(err(format!(
            "flit conservation broken: {occ_before} buffered + {arr_count} arrivals \
             + {} injected != {} buffered + {} out",
            usize::from(ctx.injected),
            r.occupancy(),
            ctx.flits_out()
        )));
    }
    if !ctx.dropped.is_empty() {
        return Err(err("MinBD dropped a flit".into()));
    }
    if ctx.ejected.len() > 1 {
        return Err(err(format!(
            "{} ejections in one cycle (one PE port)",
            ctx.ejected.len()
        )));
    }
    if r.occupancy() > occ_before + 1 {
        return Err(err(
            "side buffer absorbed more than one flit in a cycle".into()
        ));
    }

    // Ejection priority: the oldest local arrival leaves first.
    let oldest_local = arrivals
        .iter()
        .flatten()
        .filter(|f| f.dst == node)
        .min_by_key(|f| f.age_key());
    if let Some(want) = oldest_local {
        match ctx.ejected.first() {
            Some(got) if got.packet == want.packet => {}
            other => {
                return Err(err(format!(
                    "oldest local arrival {:?} not ejected (got {other:?})",
                    want.packet
                )))
            }
        }
    }

    // Reconstruct the post-ejection pipeline the router arbitrated over:
    // surviving arrivals, the accepted injection, and any side-buffer
    // occupant that re-entered the pipeline (it can only exit via a link —
    // re-injected heads are never re-buffered).
    let ejected_id = ctx.ejected.first().map(|f| f.packet);
    let mut pipeline: Vec<Flit> = arrivals
        .iter()
        .flatten()
        .filter(|f| Some(f.packet) != ejected_id)
        .copied()
        .collect();
    if ctx.injected {
        pipeline.push(inj.expect("injected without an offered flit"));
    }
    for dir in LINK_DIRECTIONS {
        if let Some(f) = ctx.out_links[dir.index()] {
            if f.packet.0 >= 1000 {
                // Use the pre-step copy: the routed flit's deflection
                // counter may already have been bumped by this step's own
                // assignment, which must not sway the silver election.
                pipeline.push(parked(f.packet.0 - 1000));
            }
        }
    }

    // Silver forward progress.
    let silver = pipeline
        .iter()
        .max_by_key(|f| (f.deflections, Reverse(f.age_key())))
        .copied();
    if let Some(s) = silver {
        if s.dst != node {
            let granted = LINK_DIRECTIONS
                .into_iter()
                .find(|d| ctx.out_links[d.index()].map(|f| f.packet) == Some(s.packet));
            let Some(dir) = granted else {
                return Err(err(format!(
                    "silver flit {:?} was side-buffered instead of routed",
                    s.packet
                )));
            };
            let productive = productive_ports(mesh, node, s.dst);
            if !productive.is_empty() && !productive.contains(dir) {
                return Err(err(format!(
                    "silver flit {:?} deflected to {dir:?} while a productive port was free",
                    s.packet
                )));
            }
        }
    }

    Ok(ctx.out_links.iter().flatten().count() as u64)
}

fn merge_reports(
    chunks: Vec<Result<CheckerReport, CheckError>>,
) -> Result<CheckerReport, CheckError> {
    let mut merged = CheckerReport::default();
    for chunk in chunks {
        let rep = chunk?;
        merged.configs += rep.configs;
        merged.grants += rep.grants;
        merged.max_rounds = merged.max_rounds.max(rep.max_rounds);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_exhaustive_minimal_capacity() {
        // Capacity 5 = reserved slots only (empty shared pool): saturation
        // is reachable inside length-5 schedules.
        let rep = check_slab_exhaustive(5, 5).expect("slab model check");
        assert_eq!(rep.configs, slab_op_space(5));
        assert!(rep.grants > 0);
    }

    #[test]
    fn slab_exhaustive_with_shared_pool() {
        let rep = check_slab_exhaustive(6, 5).expect("slab model check");
        assert_eq!(rep.configs, slab_op_space(5));
    }

    #[test]
    fn slab_saturation_across_capacities() {
        for cap in [5, 6, 8, 12, 20] {
            check_slab_saturation(cap).expect("saturation churn");
        }
    }

    #[test]
    fn silver_election_matches_specification() {
        let rep = check_silver_election().expect("silver election");
        assert!(rep.configs > 2_000, "got {} configs", rep.configs);
    }

    #[test]
    fn minbd_step_invariants_hold() {
        let rep = check_minbd_step_invariants().expect("step enumeration");
        assert_eq!(rep.configs, 6561 * 4 * 2);
        assert!(rep.grants > 0);
    }

    /// Deep slab sweep; the CI verify job runs it with `-- --ignored`.
    #[test]
    #[ignore]
    fn slab_exhaustive_deep() {
        for cap in [5, 6, 8] {
            let rep = check_slab_exhaustive(cap, 6).expect("deep slab model check");
            assert_eq!(rep.configs, slab_op_space(6));
        }
    }

    // -- mutation canaries ------------------------------------------------
    //
    // Seeded bugs that MUST trip the oracles above: a slab whose free list
    // re-grants a live slot, and a silver election inverted to pick the
    // least-deflected flit. If either canary stops failing, the checker
    // has lost its teeth.

    /// A slab whose free-list head sticks: every grant after the first
    /// reports the first grant's slot again.
    struct DoubleGrantSlab {
        inner: SharedSlab,
        stuck: Option<u32>,
    }

    impl SlabModel for DoubleGrantSlab {
        fn capacity(&self) -> usize {
            self.inner.capacity()
        }
        fn occupancy(&self) -> usize {
            self.inner.occupancy()
        }
        fn push(&mut self, vq: usize, flit: Flit, ready: Cycle) -> Result<u32, Flit> {
            let slot = self.inner.push(vq, flit, ready)?;
            Ok(*self.stuck.get_or_insert(slot))
        }
        fn pop(&mut self, vq: usize) -> Option<(Flit, SlotBudget)> {
            self.inner.pop(vq)
        }
        fn check_integrity(&self) -> Result<(), String> {
            self.inner.check_integrity()
        }
    }

    #[test]
    fn canary_damq_double_grant_is_caught() {
        let mut slab = DoubleGrantSlab {
            inner: SharedSlab::new(8),
            stuck: None,
        };
        let ops = [SlabOp::Push(0), SlabOp::Push(1)];
        let e = check_slab_ops(&mut slab, &ops).expect_err("double grant must be caught");
        assert!(e.reason.contains("double-grant"), "wrong diagnosis: {e}");
    }

    #[test]
    fn canary_minbd_priority_inversion_is_caught() {
        let inverted = |actives: &[Flit]| {
            actives
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| (f.deflections, Reverse(f.age_key())))
                .map(|(i, _)| i)
        };
        let e = check_silver_fn(inverted).expect_err("priority inversion must be caught");
        assert!(e.reason.contains("inversion"), "wrong diagnosis: {e}");
    }
}

//! Runtime mutation canaries: a rogue router model with injectable bugs
//! must be caught by the oracle suite, and the same model with the bugs
//! switched off must run clean (so a failure is attributable to the bug,
//! not to the vehicle).

use noc_core::flit::{Flit, PacketId};
use noc_core::types::{Direction, NodeId, LINK_DIRECTIONS};
use noc_core::SimConfig;
use noc_power::energy::EnergyModel;
use noc_routing::Algorithm;
use noc_sim::router::{RouterModel, StepCtx};
use noc_sim::runner::RunMode;
use noc_sim::Network;
use noc_topology::Mesh;
use noc_traffic::generator::SyntheticTraffic;
use noc_traffic::patterns::Pattern;
use noc_verify::{run_verified, ViolationKind};

/// Which deliberate bug the rogue router injects (once per router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// Correct behaviour — the control case.
    None,
    /// Eject the same flit twice (duplication in the ejection path).
    DuplicateEject,
    /// Forward one flit through a direction outside its DOR route set.
    Misroute,
    /// Silently lose one flit (neither buffered, forwarded, nor dropped).
    Vanish,
    /// Report one flit as dropped although the claimed design never drops.
    IllegalDrop,
    /// Emit a flit that never entered the router.
    Phantom,
    /// Forward one flit through the ring direction *opposite* its
    /// shortest-path DOR choice — on the torus, taking the wraparound the
    /// long way round. The wrap-aware route-legality profile must fire.
    TorusLongWay,
}

/// Minimal age-priority DOR router with unlimited loser buffering —
/// the engine-test vehicle shape — masquerading as "DXbar DOR" so the
/// strict DXbar verification profile applies.
struct RogueRouter {
    node: NodeId,
    mesh: Mesh,
    held: Vec<Flit>,
    bug: Bug,
    fired: bool,
}

impl RogueRouter {
    fn sabotage_output(&mut self, ctx: &mut StepCtx, f: Flit, want: Direction) -> bool {
        match self.bug {
            Bug::Misroute if !self.fired => {
                let illegal = LINK_DIRECTIONS.into_iter().find(|&d| {
                    d != want
                        && self.mesh.neighbor(self.node, d).is_some()
                        && ctx.out_links[d.index()].is_none()
                });
                if let Some(d) = illegal {
                    self.fired = true;
                    ctx.out_links[d.index()] = Some(f);
                    return true;
                }
                false
            }
            Bug::TorusLongWay if !self.fired => {
                let opp = want.opposite();
                if self.mesh.neighbor(self.node, opp).is_some()
                    && ctx.out_links[opp.index()].is_none()
                {
                    self.fired = true;
                    ctx.out_links[opp.index()] = Some(f);
                    return true;
                }
                false
            }
            Bug::Vanish if !self.fired => {
                self.fired = true;
                true // swallowed: no output, no buffer entry
            }
            Bug::IllegalDrop if !self.fired => {
                self.fired = true;
                ctx.dropped.push(f);
                true
            }
            _ => false,
        }
    }
}

impl RouterModel for RogueRouter {
    fn node(&self) -> NodeId {
        self.node
    }

    fn step(&mut self, ctx: &mut StepCtx) {
        // Consume (take) every arrival, as the engine contract requires,
        // returning a credit for each.
        for d in LINK_DIRECTIONS {
            if let Some(f) = ctx.arrivals[d.index()].take() {
                self.held.push(f);
                ctx.credits_out[d.index()] = 1;
            }
        }
        if let Some(inj) = ctx.injection {
            self.held.push(inj);
            ctx.injected = true;
        }
        self.held.sort_by_key(|f| f.age_key());
        let mut used = [false; 5];
        let mut remaining = Vec::new();
        for f in std::mem::take(&mut self.held) {
            let want = Algorithm::Dor.route(&self.mesh, self.node, f.dst);
            let dir = want.iter().next().unwrap();
            if used[dir.index()] {
                remaining.push(f);
                continue;
            }
            used[dir.index()] = true;
            if dir == Direction::Local {
                ctx.ejected.push(f);
                if self.bug == Bug::DuplicateEject && !self.fired {
                    self.fired = true;
                    ctx.ejected.push(f);
                }
                continue;
            }
            if self.sabotage_output(ctx, f, dir) {
                continue;
            }
            ctx.out_links[dir.index()] = Some(f);
        }
        self.held = remaining;
        if self.bug == Bug::Phantom && !self.fired {
            let spare = LINK_DIRECTIONS.into_iter().find(|&d| {
                self.mesh.neighbor(self.node, d).is_some() && ctx.out_links[d.index()].is_none()
            });
            if let Some(d) = spare {
                self.fired = true;
                let dst = self.mesh.neighbor(self.node, d).unwrap();
                ctx.out_links[d.index()] = Some(Flit::synthetic(
                    PacketId(u64::MAX),
                    self.node,
                    dst,
                    ctx.cycle,
                ));
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.held.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.held.len()
    }

    fn design_name(&self) -> &'static str {
        "DXbar DOR"
    }
}

fn cfg() -> SimConfig {
    SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 100,
        measure_cycles: 400,
        drain_cycles: 200,
        ..SimConfig::default()
    }
}

fn run_with_bug(bug: Bug) -> Result<(), Vec<ViolationKind>> {
    run_on(bug, noc_topology::Topology::Mesh)
}

fn run_on(bug: Bug, topology: noc_topology::Topology) -> Result<(), Vec<ViolationKind>> {
    let cfg = SimConfig { topology, ..cfg() };
    let mesh = Mesh::for_config(&cfg);
    let mut net = Network::new(&cfg, &move |node| {
        Box::new(RogueRouter {
            node,
            mesh,
            held: Vec::new(),
            bug,
            fired: false,
        }) as Box<dyn RouterModel>
    });
    let mut model = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.05, 1, 11);
    match run_verified(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
    ) {
        Ok(_) => Ok(()),
        Err(e) => Err(e.report.violations.iter().map(|v| v.kind).collect()),
    }
}

#[test]
fn control_rogue_without_bug_is_clean() {
    assert_eq!(run_with_bug(Bug::None), Ok(()));
}

#[test]
fn duplicate_ejection_is_caught() {
    let kinds = run_with_bug(Bug::DuplicateEject).unwrap_err();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::Duplicate | ViolationKind::Conservation)),
        "unexpected kinds: {kinds:?}"
    );
}

#[test]
fn misroute_outside_turn_model_is_caught() {
    let kinds = run_with_bug(Bug::Misroute).unwrap_err();
    assert!(
        kinds.contains(&ViolationKind::RouteIllegal),
        "unexpected kinds: {kinds:?}"
    );
}

#[test]
fn vanished_flit_is_caught() {
    let kinds = run_with_bug(Bug::Vanish).unwrap_err();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::Conservation | ViolationKind::Leak)),
        "unexpected kinds: {kinds:?}"
    );
}

#[test]
fn illegal_drop_is_caught() {
    let kinds = run_with_bug(Bug::IllegalDrop).unwrap_err();
    assert!(
        kinds.contains(&ViolationKind::Leak),
        "unexpected kinds: {kinds:?}"
    );
}

#[test]
fn control_rogue_on_torus_is_clean() {
    // Wrap-aware DOR on the torus is exactly what the profile enforces:
    // a correct router (which does take wrap links on short-ring routes)
    // must run clean.
    assert_eq!(run_on(Bug::None, noc_topology::Topology::Torus), Ok(()));
}

#[test]
fn torus_long_way_hop_is_caught() {
    let kinds = run_on(Bug::TorusLongWay, noc_topology::Topology::Torus).unwrap_err();
    assert!(
        kinds.contains(&ViolationKind::RouteIllegal),
        "unexpected kinds: {kinds:?}"
    );
}

#[test]
fn phantom_flit_is_caught() {
    let kinds = run_with_bug(Bug::Phantom).unwrap_err();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::Phantom | ViolationKind::Conservation)),
        "unexpected kinds: {kinds:?}"
    );
}

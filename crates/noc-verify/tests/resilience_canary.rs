//! Resilience-path mutation canaries: with ARQ recovery enabled, a router
//! that silently loses flits produces *perfect-looking delivery statistics*
//! (the NI retransmits every victim), so end-to-end metrics cannot catch the
//! bug — only the conservation/leak oracles can. The honest control run
//! under heavy transient faults must stay clean, so a failure is
//! attributable to the injected bug, not to fault injection itself.

use noc_core::flit::Flit;
use noc_core::types::{Direction, NodeId, LINK_DIRECTIONS};
use noc_core::SimConfig;
use noc_power::energy::EnergyModel;
use noc_resilience::{ResiliencePlan, TransientSpec};
use noc_routing::Algorithm;
use noc_sim::router::{RouterModel, StepCtx};
use noc_sim::runner::RunMode;
use noc_sim::Network;
use noc_topology::Mesh;
use noc_traffic::generator::SyntheticTraffic;
use noc_traffic::patterns::Pattern;
use noc_verify::{run_verified, ViolationKind};

/// Age-priority DOR router with unlimited loser buffering (the engine-test
/// vehicle shape). With `vanish_one` set it swallows exactly one in-transit
/// flit — the ARQ layer will dutifully re-deliver a copy, masking the bug
/// from every delivery statistic.
struct Vehicle {
    node: NodeId,
    mesh: Mesh,
    held: Vec<Flit>,
    vanish_one: bool,
    fired: bool,
}

impl RouterModel for Vehicle {
    fn node(&self) -> NodeId {
        self.node
    }

    fn step(&mut self, ctx: &mut StepCtx) {
        // Consume (take) every arrival, as the engine contract requires,
        // returning a credit for each.
        for d in LINK_DIRECTIONS {
            if let Some(f) = ctx.arrivals[d.index()].take() {
                self.held.push(f);
                ctx.credits_out[d.index()] = 1;
            }
        }
        if let Some(inj) = ctx.injection {
            self.held.push(inj);
            ctx.injected = true;
        }
        self.held.sort_by_key(|f| f.age_key());
        let mut used = [false; 5];
        let mut remaining = Vec::new();
        for f in std::mem::take(&mut self.held) {
            let want = Algorithm::Dor.route(&self.mesh, self.node, f.dst);
            let dir = want.iter().next().unwrap();
            if used[dir.index()] {
                remaining.push(f);
                continue;
            }
            used[dir.index()] = true;
            if dir == Direction::Local {
                ctx.ejected.push(f);
                continue;
            }
            // The bug: one arrived (mid-route) flit vanishes — no output,
            // no buffer entry, no drop record.
            if self.vanish_one && !self.fired && f.src != self.node && f.seq != 0 {
                self.fired = true;
                continue;
            }
            ctx.out_links[dir.index()] = Some(f);
        }
        self.held = remaining;
    }

    fn is_idle(&self) -> bool {
        self.held.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.held.len()
    }

    fn design_name(&self) -> &'static str {
        "DXbar DOR"
    }
}

fn cfg() -> SimConfig {
    SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 100,
        measure_cycles: 600,
        // Long enough for the worst ARQ give-up chain (sum of backed-off
        // timeouts ≈ 3k cycles) so the run reaches true quiescence and the
        // end-of-run ledger checks actually fire.
        drain_cycles: 6_000,
        ..SimConfig::default()
    }
}

fn run_resilient(vanish_one: bool) -> Result<(), Vec<ViolationKind>> {
    let cfg = cfg();
    let mesh = Mesh::new(cfg.width, cfg.height);
    let mut net = Network::new(&cfg, &move |node| {
        Box::new(Vehicle {
            node,
            mesh,
            held: Vec::new(),
            vanish_one,
            fired: false,
        }) as Box<dyn RouterModel>
    });
    net.set_resilience(ResiliencePlan::none().with_transients(TransientSpec::new(1e-3, 23)));
    let mut model = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.05, 1, 11);
    match run_verified(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
    ) {
        Ok((_, report)) => {
            let (transit_lost, crc_bounced, _) = report.recovery_counts;
            assert!(
                transit_lost + crc_bounced > 0,
                "transient rate high enough that the oracle must see faults"
            );
            Ok(())
        }
        Err(e) => Err(e.report.violations.iter().map(|v| v.kind).collect()),
    }
}

#[test]
fn honest_run_under_transient_faults_is_clean() {
    assert_eq!(run_resilient(false), Ok(()));
}

#[test]
fn silent_router_drop_is_caught_despite_arq_masking_it() {
    let kinds = run_resilient(true).unwrap_err();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ViolationKind::Conservation | ViolationKind::Leak)),
        "unexpected kinds: {kinds:?}"
    );
}

//! DAMQ router: dynamically-allocated multi-queue shared buffering.
//!
//! The classic DAMQ organization (Tamir & Frazier; arXiv:0910.1852 applies
//! it to NoCs) replaces per-input FIFOs with one shared buffer bank per
//! router. Queues are formed *per output port* by linked lists threaded
//! through the bank, so buffer space flows to whichever outputs are hot —
//! the same observation that motivates the paper's unified buffer, taken
//! to its limit.
//!
//! This model:
//!
//! * parks every arrival in the [`SharedSlab`] virtual queue of its chosen
//!   output (dimension-order preference, steered away from dead links when
//!   the resilience layer marks them);
//! * serves each output port from its queue head, oldest first, with the
//!   one-cycle buffer-write latency of the buffered baselines;
//! * relies on the slab's reserved-slot starvation guard for fairness: a
//!   queue that holds nothing can always accept, so a hot output cannot
//!   lock the others out of the bank;
//! * falls back to *deflection* for an arrival the slab refuses (shared
//!   pool exhausted) — the arrival must leave this cycle, so it takes a
//!   free output like an AFC overflow instead of asserting backpressure
//!   (no cross-router credit handshake needed).

use crate::slab::{SharedSlab, LOCAL_VQ};
use noc_core::flit::Flit;
use noc_core::inline::InlineVec;
use noc_core::types::{Cycle, NodeId, LINK_DIRECTIONS, NUM_LINK_PORTS};
use noc_routing::deflection::{assign_port_with_faults, productive_count, rank_ports_inline};
use noc_sim::router::{RouterModel, StepCtx};
use noc_sim::verify::ProbeEvent;
use noc_topology::Mesh;
use noc_trace::TraceEvent;

/// The DAMQ shared-buffer router.
pub struct DamqRouter {
    node: NodeId,
    mesh: Mesh,
    slab: SharedSlab,
    /// Dead output links, published by the engine's resilience layer.
    link_down: [bool; NUM_LINK_PORTS],
}

impl DamqRouter {
    /// `depth` is the per-input depth of the buffered baselines; the slab
    /// gets the same total budget (`4 * depth` slots) shared freely.
    pub fn new(node: NodeId, mesh: Mesh, depth: usize) -> DamqRouter {
        DamqRouter {
            node,
            mesh,
            slab: SharedSlab::new(4 * depth),
            link_down: [false; NUM_LINK_PORTS],
        }
    }

    /// Shared slab (verification and diagnostics).
    pub fn slab(&self) -> &SharedSlab {
        &self.slab
    }

    /// Virtual queue for a flit: the ejection queue at its destination,
    /// otherwise the preferred productive output steered away from dead
    /// links. `true` when the choice is non-minimal (every productive
    /// link is dead) — the flit pays a deflection.
    fn route_vq(&self, f: &Flit) -> (usize, bool) {
        if f.dst == self.node {
            return (LOCAL_VQ, false);
        }
        let ranking = rank_ports_inline(&self.mesh, self.node, f.dst);
        let productive = productive_count(&self.mesh, self.node, f.dst);
        if let Some(d) = ranking[..productive]
            .iter()
            .find(|d| !self.link_down[d.index()])
        {
            return (d.index(), false);
        }
        if let Some(d) = ranking.as_slice()[productive..]
            .iter()
            .find(|d| !self.link_down[d.index()])
        {
            return (d.index(), true);
        }
        // Every link with a queue is dead: the flit exits into a dead
        // productive link and the NI layer recovers the loss.
        (ranking[0].index(), false)
    }

    /// Park one flit in the slab, or hand it back on refusal.
    fn buffer(&mut self, mut f: Flit, ctx: &mut StepCtx) -> Result<(), Flit> {
        let (vq, misroute) = self.route_vq(&f);
        if misroute {
            f.deflections += 1;
            ctx.events.deflections += 1;
        }
        let ready = ctx.cycle + 1;
        match self.slab.push(vq, f, ready) {
            Ok(_slot) => {
                ctx.events.buffer_writes += 1;
                let cycle = ctx.cycle;
                let occupancy = self.slab.vq_len(vq) as u32;
                let node = self.node;
                ctx.trace.emit(|| TraceEvent::BufferEnter {
                    cycle,
                    node,
                    packet: f.packet,
                    flit_index: f.flit_index as u16,
                    occupancy,
                });
                Ok(())
            }
            Err(f) => Err(f),
        }
    }

    /// Pop the head of `vq` (ready at `ready`), emitting buffer-read
    /// accounting.
    fn unbuffer(&mut self, vq: usize, ready: Cycle, ctx: &mut StepCtx) -> Flit {
        let (f, _budget) = self.slab.pop(vq).expect("caller checked the head");
        ctx.events.buffer_reads += 1;
        ctx.events.xbar_traversals += 1;
        let cycle = ctx.cycle;
        let node = self.node;
        let waited = cycle.saturating_sub(ready.saturating_sub(1));
        ctx.trace.emit(|| TraceEvent::BufferExit {
            cycle,
            node,
            packet: f.packet,
            flit_index: f.flit_index as u16,
            waited,
        });
        f
    }

    /// AFC-style deflection assignment for arrivals the slab refused:
    /// they must leave this cycle, whatever port is free.
    fn deflect_overflow(&self, flits: &[Flit], used: &mut [bool; 4], ctx: &mut StepCtx) {
        for &(mut f) in flits {
            let ranking = rank_ports_inline(&self.mesh, self.node, f.dst);
            let productive = productive_count(&self.mesh, self.node, f.dst);
            let (dir, deflected) = assign_port_with_faults(
                &ranking,
                productive,
                used,
                &self.link_down,
                f.deflections as usize,
            )
            .expect("overflow count never exceeds free ports");
            used[dir.index()] = true;
            if deflected {
                f.deflections += 1;
                ctx.events.deflections += 1;
                let cycle = ctx.cycle;
                let wanted = ranking[0];
                let node = self.node;
                ctx.trace.emit(|| TraceEvent::Deflect {
                    cycle,
                    node,
                    packet: f.packet,
                    flit_index: f.flit_index as u16,
                    wanted,
                    got: dir,
                });
            }
            ctx.events.xbar_traversals += 1;
            ctx.out_links[dir.index()] = Some(f);
        }
    }
}

impl RouterModel for DamqRouter {
    fn node(&self) -> NodeId {
        self.node
    }

    fn step(&mut self, ctx: &mut StepCtx) {
        // Buffer-write phase: arrivals enter the slab oldest first (so the
        // shared pool's last slots go to older flits); refused arrivals
        // fall through to deflection.
        let mut arrivals: InlineVec<Flit, 4> =
            ctx.arrivals.iter_mut().filter_map(|a| a.take()).collect();
        arrivals.sort_unstable_by_key(|f| f.age_key());
        let mut overflow: InlineVec<Flit, 4> = InlineVec::new();
        for f in arrivals.iter() {
            if let Err(f) = self.buffer(f, ctx) {
                overflow.push(f);
            }
        }

        // Injection enters the slab too (lowest write priority). A refusal
        // leaves the flit in the source queue — injections never deflect.
        if let Some(inj) = ctx.injection {
            let (vq, _) = self.route_vq(&inj);
            if self.slab.can_accept(vq) && self.buffer(inj, ctx).is_ok() {
                ctx.injected = true;
            }
        }

        // Overflow arrivals leave now, before the queue heads, because
        // they have no other cycle to leave in.
        let mut used = [false; 4];
        overflow.sort_unstable_by_key(|f| f.age_key());
        self.deflect_overflow(&overflow, &mut used, ctx);

        // Switch-traversal phase: each free output serves its queue head.
        for d in LINK_DIRECTIONS {
            if used[d.index()] {
                continue;
            }
            let ready = match self.slab.front(d.index()) {
                Some((_, ready)) => ready,
                None => continue,
            };
            if ready > ctx.cycle {
                continue;
            }
            let f = self.unbuffer(d.index(), ready, ctx);
            ctx.out_links[d.index()] = Some(f);
        }

        // Ejection: one flit per cycle to the PE.
        if let Some((_, ready)) = self.slab.front(LOCAL_VQ) {
            if ready <= ctx.cycle {
                let f = self.unbuffer(LOCAL_VQ, ready, ctx);
                ctx.ejected.push(f);
            }
        }

        if ctx.probe.is_enabled() {
            let cap = self.slab.capacity() as u8;
            for vq in 0..crate::slab::NUM_VQS {
                let depth = self.slab.vq_len(vq) as u8;
                ctx.probe.emit(|| ProbeEvent::FifoDepth {
                    input: vq as u8,
                    depth,
                    cap,
                });
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.slab.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.slab.occupancy()
    }

    fn set_faulty_links(&mut self, down: [bool; NUM_LINK_PORTS]) {
        self.link_down = down;
    }

    fn design_name(&self) -> &'static str {
        "DAMQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::flit::PacketId;
    use noc_core::types::Direction;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn router() -> DamqRouter {
        DamqRouter::new(NodeId(5), mesh(), 4)
    }

    fn flit(dst: u16, created: u64) -> Flit {
        Flit::synthetic(PacketId(created), NodeId(0), NodeId(dst), created)
    }

    #[test]
    fn arrival_is_buffered_then_served_next_cycle() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        // Node 5 = (1,1); node 7 = (3,1) is due East.
        ctx.arrivals[Direction::West.index()] = Some(flit(7, 0));
        r.step(&mut ctx);
        assert_eq!(ctx.events.buffer_writes, 1);
        assert_eq!(r.occupancy(), 1, "buffered, not switched");
        assert!(ctx.out_links.iter().all(|o| o.is_none()));

        let mut ctx = StepCtx::new(1);
        r.step(&mut ctx);
        assert_eq!(
            ctx.out_links[Direction::East.index()].unwrap().packet,
            PacketId(0)
        );
        assert!(r.is_idle());
    }

    #[test]
    fn conflicting_arrivals_share_one_queue_without_deflecting() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        ctx.arrivals[Direction::West.index()] = Some(flit(7, 0));
        ctx.arrivals[Direction::North.index()] = Some(flit(7, 3));
        ctx.arrivals[Direction::South.index()] = Some(flit(7, 9));
        r.step(&mut ctx);
        assert_eq!(ctx.events.deflections, 0, "shared buffering absorbs all");
        assert_eq!(r.slab().vq_len(Direction::East.index()), 3);
        // East drains one per cycle, oldest first.
        for (t, want) in [(1u64, 0u64), (2, 3), (3, 9)] {
            let mut ctx = StepCtx::new(t);
            r.step(&mut ctx);
            assert_eq!(
                ctx.out_links[Direction::East.index()].unwrap().packet,
                PacketId(want)
            );
        }
        assert!(r.is_idle());
    }

    #[test]
    fn slab_refusal_falls_back_to_deflection() {
        let mut r = router();
        // Saturate the East queue past reserved + shared budget without
        // ever letting East drain: pump 4 East-bound arrivals per cycle.
        let mut deflected = false;
        for t in 0..40u64 {
            let mut ctx = StepCtx::new(t);
            for d in LINK_DIRECTIONS {
                ctx.arrivals[d.index()] = Some(flit(7, t * 4 + d.index() as u64));
            }
            r.step(&mut ctx);
            r.slab().check_integrity().unwrap();
            if ctx.events.deflections > 0 {
                deflected = true;
                break;
            }
        }
        assert!(deflected, "slab exhaustion must fall back to deflection");
    }

    #[test]
    fn local_flits_eject_one_per_cycle() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        ctx.arrivals[Direction::West.index()] = Some(flit(5, 0));
        ctx.arrivals[Direction::East.index()] = Some(flit(5, 1));
        r.step(&mut ctx);
        assert!(ctx.ejected.is_empty(), "buffer write costs a cycle");
        let mut ctx = StepCtx::new(1);
        r.step(&mut ctx);
        assert_eq!(ctx.ejected.len(), 1);
        assert_eq!(ctx.ejected[0].packet, PacketId(0), "oldest first");
        let mut ctx = StepCtx::new(2);
        r.step(&mut ctx);
        assert_eq!(ctx.ejected.len(), 1);
        assert!(r.is_idle());
    }

    #[test]
    fn injection_accepted_only_when_slab_has_room() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        ctx.injection = Some(flit(7, 0));
        r.step(&mut ctx);
        assert!(ctx.injected);
        assert_eq!(r.occupancy(), 1);
        // Fill East's budgets completely; further injections are refused.
        let mut t = 1u64;
        loop {
            let mut ctx = StepCtx::new(0); // cycle pinned: nothing ready
            ctx.injection = Some(flit(7, t));
            r.step(&mut ctx);
            if !ctx.injected {
                break;
            }
            t += 1;
            assert!(t < 100, "slab must eventually refuse");
        }
        r.slab().check_integrity().unwrap();
    }

    #[test]
    fn dead_link_steers_vq_choice() {
        let mut r = router();
        // Node 5 -> node 7 prefers East; kill East.
        let mut down = [false; NUM_LINK_PORTS];
        down[Direction::East.index()] = true;
        r.set_faulty_links(down);
        let f = flit(7, 0);
        let (vq, misroute) = r.route_vq(&f);
        assert_ne!(vq, Direction::East.index());
        assert!(misroute, "non-minimal choice counts as a deflection");
    }

    #[test]
    fn conservation_under_random_churn() {
        let mut r = router();
        for t in 0..500u64 {
            let mut ctx = StepCtx::new(t);
            for d in LINK_DIRECTIONS {
                if (t + d.index() as u64).is_multiple_of(2) {
                    ctx.arrivals[d.index()] = Some(flit((t % 16) as u16, t * 4 + d.index() as u64));
                }
            }
            if t % 3 == 0 {
                ctx.injection = Some(flit(((t + 5) % 16) as u16, t * 4 + 17));
            }
            let arrivals = ctx.arrivals.iter().flatten().count();
            let before = r.occupancy();
            r.step(&mut ctx);
            assert_eq!(
                before + arrivals + usize::from(ctx.injected),
                r.occupancy() + ctx.flits_out(),
                "conservation at t={t}"
            );
            r.slab().check_integrity().unwrap();
        }
    }
}

//! Router-zoo extensions beyond the paper's comparator set.
//!
//! Two microarchitectures that bracket the paper's unified-buffer design
//! from opposite sides of the buffering spectrum:
//!
//! * [`damq::DamqRouter`] — a dynamically-allocated multi-queue (DAMQ)
//!   router: all input buffering is one shared slab managed by a
//!   linked-list allocator ([`slab::SharedSlab`]) with per-virtual-queue
//!   head/tail chains and a reserved-slot starvation guard, the direct
//!   generalization of the paper's unified buffer (arXiv:0910.1852).
//! * [`minbd::MinBdRouter`] — a MinBD-style minimally-buffered deflection
//!   router: BLESS-like deflection switching plus a small side buffer with
//!   a buffer-ejection/redirection stage and silver-flit prioritization to
//!   bound deflection livelock (arXiv:2112.02516).
//!
//! Both implement [`noc_sim::RouterModel`] and plug into the same engine,
//! accounting, tracing and verification harness as the paper designs.

pub mod damq;
pub mod minbd;
pub mod slab;

pub use damq::DamqRouter;
pub use minbd::MinBdRouter;
pub use slab::{SharedSlab, SlotBudget, LOCAL_VQ, NUM_VQS};

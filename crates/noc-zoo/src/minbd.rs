//! MinBD-style minimally-buffered deflection router.
//!
//! MinBD (Fallin et al.; surveyed in arXiv:2112.02516) sits between
//! Flit-BLESS and the buffered baselines: the datapath is a deflection
//! switch, but a *small side buffer* absorbs a would-be-deflected flit
//! per cycle, and buffered flits re-enter the pipeline when an input
//! slot is free. Two mechanisms bound livelock and starvation:
//!
//! * **buffer ejection / redirection** — each cycle at most one flit that
//!   would lose port arbitration is moved into the side buffer instead of
//!   deflecting (*buffer ejection*); when the buffer is full its head is
//!   forced back into the pipeline even before its re-injection timer
//!   expires (*redirection*), so the buffer can never wedge;
//! * **silver-flit prioritization** — each cycle the most-deflected
//!   (oldest on ties) flit in the pipeline is *silver*: it is assigned
//!   its best productive port first and is never buffer-ejected, so some
//!   flit always makes forward progress and deflection counts stay
//!   bounded.

use noc_core::flit::Flit;
use noc_core::inline::InlineVec;
use noc_core::queue::FixedQueue;
use noc_core::types::{Cycle, NodeId, NUM_LINK_PORTS};
use noc_routing::deflection::{assign_port_with_faults, productive_count, rank_ports_inline};
use noc_sim::router::{RouterModel, StepCtx};
use noc_sim::verify::ProbeEvent;
use noc_topology::Mesh;
use noc_trace::TraceEvent;

/// A side-buffered flit and its earliest re-injection cycle (buffer write
/// costs one cycle, as in the buffered baselines).
#[derive(Debug, Clone, Copy)]
struct Parked {
    flit: Flit,
    ready: Cycle,
}

/// Priority key for silver election: most deflected first, oldest on
/// ties. `age_key` is unique per coexisting flit, so the winner is
/// deterministic.
fn silver_key(f: &Flit) -> (u16, std::cmp::Reverse<(Cycle, u64, u8)>) {
    (f.deflections, std::cmp::Reverse(f.age_key()))
}

/// The MinBD router.
pub struct MinBdRouter {
    node: NodeId,
    mesh: Mesh,
    num_links: usize,
    /// The side buffer: one small FIFO per router, not per input.
    buffer: FixedQueue<Parked>,
    /// Dead output links, published by the engine's resilience layer.
    link_down: [bool; NUM_LINK_PORTS],
}

impl MinBdRouter {
    /// `depth` matches the buffered baselines' per-input depth; MinBD
    /// spends it once, on the single side buffer.
    pub fn new(node: NodeId, mesh: Mesh, depth: usize) -> MinBdRouter {
        MinBdRouter {
            node,
            mesh,
            num_links: mesh.link_dirs(node).count(),
            buffer: FixedQueue::new(depth),
            link_down: [false; NUM_LINK_PORTS],
        }
    }

    /// Index of the silver flit in `actives`: most deflected, oldest on
    /// ties. `None` when the pipeline is empty.
    pub fn pick_silver(actives: &[Flit]) -> Option<usize> {
        actives
            .iter()
            .enumerate()
            .max_by_key(|(_, f)| silver_key(f))
            .map(|(i, _)| i)
    }

    /// Verification hook: park a flit directly in the side buffer with the
    /// given ready cycle. Returns `false` when the buffer is full. The
    /// noc-verify step-invariant checker uses this to enumerate buffer
    /// pre-states without replaying injection histories.
    pub fn preload(&mut self, flit: Flit, ready: Cycle) -> bool {
        self.buffer.push(Parked { flit, ready }).is_ok()
    }

    fn eject_into(&self, f: Flit, ctx: &mut StepCtx) {
        ctx.events.xbar_traversals += 1;
        ctx.ejected.push(f);
    }

    fn note_buffer_exit(&self, p: Parked, ctx: &mut StepCtx) {
        ctx.events.buffer_reads += 1;
        let cycle = ctx.cycle;
        let node = self.node;
        let waited = cycle.saturating_sub(p.ready.saturating_sub(1));
        ctx.trace.emit(|| TraceEvent::BufferExit {
            cycle,
            node,
            packet: p.flit.packet,
            flit_index: p.flit.flit_index as u16,
            waited,
        });
    }
}

impl RouterModel for MinBdRouter {
    fn node(&self) -> NodeId {
        self.node
    }

    fn step(&mut self, ctx: &mut StepCtx) {
        let mut actives: InlineVec<Flit, 5> =
            ctx.arrivals.iter_mut().filter_map(|a| a.take()).collect();

        // Ejection: the oldest arrival for this node leaves (one PE port);
        // if no arrival wants out, a ready side-buffer head may eject.
        let mut ejected = false;
        if let Some(pos) = actives
            .iter()
            .enumerate()
            .filter(|(_, f)| f.dst == self.node)
            .min_by_key(|(_, f)| f.age_key())
            .map(|(i, _)| i)
        {
            let f = actives.remove(pos);
            self.eject_into(f, ctx);
            ejected = true;
        } else if let Some(p) = self
            .buffer
            .front()
            .filter(|p| p.ready <= ctx.cycle && p.flit.dst == self.node)
            .copied()
        {
            self.buffer.pop();
            self.note_buffer_exit(p, ctx);
            self.eject_into(p.flit, ctx);
            ejected = true;
        }

        // Re-injection / redirection: a free pipeline slot pulls the
        // side-buffer head back in. A full buffer redirects its head
        // unconditionally (even before its timer) so it can never wedge;
        // otherwise only a ready, non-local head re-enters.
        let mut from_buffer: Option<(Cycle, u64, u8)> = None;
        if actives.len() < self.num_links {
            let force = self.buffer.is_full();
            let head_ok = self
                .buffer
                .front()
                .map(|p| force || (p.ready <= ctx.cycle && p.flit.dst != self.node))
                .unwrap_or(false);
            if head_ok {
                let p = self.buffer.pop().expect("head exists");
                self.note_buffer_exit(p, ctx);
                from_buffer = Some(p.flit.age_key());
                actives.push(p.flit);
            }
        }

        // Injection: fills the last free slot, below buffered traffic.
        if actives.len() < self.num_links {
            if let Some(inj) = ctx.injection {
                if inj.dst == self.node {
                    if !ejected {
                        self.eject_into(inj, ctx);
                        ctx.injected = true;
                    }
                } else {
                    actives.push(inj);
                    ctx.injected = true;
                }
            }
        }

        if actives.is_empty() {
            return;
        }

        // Silver election: most deflected, oldest on ties. The silver flit
        // is assigned first and never buffer-ejected.
        let silver = Self::pick_silver(&actives).expect("actives non-empty");
        let silver_id = actives[silver].age_key();

        // Buffer ejection: if two pipeline flits contend for the same
        // preferred port, park the lowest-priority contender (never the
        // silver flit, never the flit that just left the buffer) instead
        // of letting it deflect. At most one buffer write per cycle.
        if !self.buffer.is_full() && actives.len() >= 2 {
            let mut wanted = [0u8; NUM_LINK_PORTS];
            for f in actives.iter() {
                let ranking = rank_ports_inline(&self.mesh, self.node, f.dst);
                wanted[ranking[0].index()] += 1;
            }
            let victim = actives
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    let ranking = rank_ports_inline(&self.mesh, self.node, f.dst);
                    wanted[ranking[0].index()] >= 2
                })
                .filter(|(_, f)| f.age_key() != silver_id)
                .filter(|(_, f)| from_buffer != Some(f.age_key()))
                .max_by_key(|(_, f)| f.age_key())
                .map(|(i, _)| i);
            if let Some(i) = victim {
                let f = actives.remove(i);
                let depth = self.buffer.len() as u32;
                match self.buffer.push(Parked {
                    flit: f,
                    ready: ctx.cycle + 1,
                }) {
                    Ok(()) => {
                        ctx.events.buffer_writes += 1;
                        let cycle = ctx.cycle;
                        let node = self.node;
                        ctx.trace.emit(|| TraceEvent::BufferEnter {
                            cycle,
                            node,
                            packet: f.packet,
                            flit_index: f.flit_index as u16,
                            occupancy: depth + 1,
                        });
                    }
                    Err(p) => {
                        // Unreachable (checked !is_full above), but a push
                        // race must never lose the flit.
                        actives.push(p.flit);
                    }
                }
            }
        }

        // Port assignment: silver first (best productive port), the rest
        // oldest first, deflecting when beaten.
        let mut order: InlineVec<Flit, 5> = InlineVec::new();
        if let Some(pos) = actives.iter().position(|f| f.age_key() == silver_id) {
            order.push(actives.remove(pos));
        }
        actives.sort_unstable_by_key(|f| f.age_key());
        for f in actives.iter() {
            order.push(f);
        }

        let mut used = [false; 4];
        for mut f in order.iter() {
            let ranking = rank_ports_inline(&self.mesh, self.node, f.dst);
            let productive = productive_count(&self.mesh, self.node, f.dst);
            let (dir, deflected) = assign_port_with_faults(
                &ranking,
                productive,
                &used,
                &self.link_down,
                f.deflections as usize,
            )
            .expect("flit count never exceeds free ports");
            used[dir.index()] = true;
            if deflected {
                f.deflections += 1;
                ctx.events.deflections += 1;
                let cycle = ctx.cycle;
                let wanted = ranking[0];
                let node = self.node;
                ctx.trace.emit(|| TraceEvent::Deflect {
                    cycle,
                    node,
                    packet: f.packet,
                    flit_index: f.flit_index as u16,
                    wanted,
                    got: dir,
                });
            }
            ctx.events.xbar_traversals += 1;
            ctx.out_links[dir.index()] = Some(f);
        }

        if ctx.probe.is_enabled() {
            let depth = self.buffer.len() as u8;
            let cap = self.buffer.capacity() as u8;
            ctx.probe.emit(|| ProbeEvent::FifoDepth {
                input: 0,
                depth,
                cap,
            });
        }
    }

    fn is_idle(&self) -> bool {
        self.buffer.is_empty()
    }

    fn occupancy(&self) -> usize {
        self.buffer.len()
    }

    fn set_faulty_links(&mut self, down: [bool; NUM_LINK_PORTS]) {
        self.link_down = down;
    }

    fn design_name(&self) -> &'static str {
        "MinBD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::flit::PacketId;
    use noc_core::types::{Direction, LINK_DIRECTIONS};

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn router() -> MinBdRouter {
        MinBdRouter::new(NodeId(5), mesh(), 4)
    }

    fn flit(dst: u16, created: u64) -> Flit {
        Flit::synthetic(PacketId(created), NodeId(0), NodeId(dst), created)
    }

    #[test]
    fn lone_flit_takes_its_productive_port() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        ctx.arrivals[Direction::West.index()] = Some(flit(7, 0));
        r.step(&mut ctx);
        assert!(ctx.out_links[Direction::East.index()].is_some());
        assert_eq!(ctx.events.deflections, 0);
        assert!(r.is_idle());
    }

    #[test]
    fn conflict_buffers_one_flit_instead_of_deflecting() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        ctx.arrivals[Direction::West.index()] = Some(flit(7, 0));
        ctx.arrivals[Direction::North.index()] = Some(flit(7, 5));
        r.step(&mut ctx);
        // The younger contender is side-buffered, the older goes East.
        assert_eq!(ctx.events.deflections, 0, "buffer absorbs the loser");
        assert_eq!(ctx.out_links[Direction::East.index()].unwrap().created, 0);
        assert_eq!(r.occupancy(), 1);
        // Next cycle it re-injects and leaves.
        let mut ctx = StepCtx::new(1);
        r.step(&mut ctx);
        assert!(ctx.out_links[Direction::East.index()].is_some());
        assert!(r.is_idle());
    }

    #[test]
    fn silver_flit_wins_its_port() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        // The younger flit has suffered more deflections: it is silver
        // and must win East from the older zero-deflection flit.
        let old = flit(7, 0);
        let mut young = flit(7, 9);
        young.deflections = 3;
        ctx.arrivals[Direction::West.index()] = Some(old);
        ctx.arrivals[Direction::North.index()] = Some(young);
        // Fill the buffer so the loser cannot be absorbed silently.
        for i in 0..4 {
            r.buffer
                .push(Parked {
                    flit: flit(15, 100 + i),
                    ready: 50,
                })
                .unwrap();
        }
        r.step(&mut ctx);
        let winner = ctx.out_links[Direction::East.index()].expect("East granted");
        assert_eq!(winner.created, 9, "silver flit takes the productive port");
    }

    #[test]
    fn full_buffer_redirects_its_head() {
        let mut r = router();
        for i in 0..4 {
            r.buffer
                .push(Parked {
                    flit: flit(7, 100 + i),
                    ready: 1000, // far future: only redirection can free it
                })
                .unwrap();
        }
        let mut ctx = StepCtx::new(0);
        r.step(&mut ctx);
        assert_eq!(r.occupancy(), 3, "full buffer forced one flit out");
        assert!(ctx.out_links.iter().flatten().count() == 1);
    }

    #[test]
    fn ejects_oldest_local_arrival() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        ctx.arrivals[Direction::West.index()] = Some(flit(5, 4));
        ctx.arrivals[Direction::East.index()] = Some(flit(5, 1));
        r.step(&mut ctx);
        assert_eq!(ctx.ejected.len(), 1, "one PE port");
        assert_eq!(ctx.ejected[0].created, 1, "oldest first");
    }

    #[test]
    fn injection_needs_a_free_slot() {
        let mut r = router();
        let mut ctx = StepCtx::new(0);
        for d in LINK_DIRECTIONS {
            ctx.arrivals[d.index()] = Some(flit(7, d.index() as u64));
        }
        ctx.injection = Some(flit(9, 50));
        r.step(&mut ctx);
        assert!(!ctx.injected, "four arrivals fill the pipeline");
        let mut ctx = StepCtx::new(1);
        ctx.injection = Some(flit(9, 50));
        r.step(&mut ctx);
        assert!(ctx.injected);
    }

    #[test]
    fn conservation_under_random_churn() {
        let mut r = router();
        for t in 0..500u64 {
            let mut ctx = StepCtx::new(t);
            for d in LINK_DIRECTIONS {
                if (t + d.index() as u64).is_multiple_of(2) {
                    ctx.arrivals[d.index()] = Some(flit((t % 16) as u16, t * 4 + d.index() as u64));
                }
            }
            if t % 3 == 0 {
                ctx.injection = Some(flit(((t + 5) % 16) as u16, t * 4 + 17));
            }
            let arrivals = ctx.arrivals.iter().flatten().count();
            let before = r.occupancy();
            r.step(&mut ctx);
            assert_eq!(
                before + arrivals + usize::from(ctx.injected),
                r.occupancy() + ctx.flits_out(),
                "conservation at t={t}"
            );
        }
    }
}

//! Shared-slab buffer with linked-list free-space management.
//!
//! A DAMQ router holds *all* of its input buffering in one physical SRAM
//! bank; virtual queues (one per output port) are carved out of it
//! dynamically by threading per-queue linked lists through the slot array.
//! This module is that bank: flit payloads live in a [`FlitPool`] arena,
//! and the slab adds the allocator on top — an intrusive singly-linked
//! free list plus one `(head, tail)` chain per virtual queue, all threaded
//! through a single `next[]` array so occupancy moves between the free
//! list and the queues without copying flits.
//!
//! **Reserved-slot starvation guard.** A naive shared buffer lets one hot
//! output queue absorb every slot and starve the rest. The slab therefore
//! splits its budget: each virtual queue owns exactly one *reserved* slot
//! credit, and only `capacity - NUM_VQS` slots are *shared*. A queue's
//! push draws its reserved credit whenever it holds none, and falls back
//! to the shared pool otherwise; pushes beyond the shared budget are
//! refused ([`SharedSlab::push`] returns the flit back) so the router can
//! fall back to deflection. The guard yields a local, exhaustively
//! checkable invariant: a queue that holds no reserved slot can *always*
//! accept one flit, because at most `NUM_VQS - 1` other reserved credits
//! and `capacity - NUM_VQS` shared slots can be outstanding.

use noc_core::flit::Flit;
use noc_core::pool::{FlitId, FlitPool};
use noc_core::types::Cycle;

/// Virtual queues per router: one per link output plus the ejection port.
pub const NUM_VQS: usize = 5;

/// Virtual-queue index of the ejection (local) port.
pub const LOCAL_VQ: usize = 4;

/// Null slot index terminating every chain.
const NIL: u32 = u32::MAX;

/// Which budget a buffered flit's slot was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotBudget {
    /// The owning virtual queue's single guaranteed slot credit.
    Reserved,
    /// The common pool shared by all virtual queues.
    Shared,
}

/// Per-slot bookkeeping for an occupied slot.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    /// Handle of the parked flit in the arena.
    flit: FlitId,
    /// Earliest cycle the flit may be read out (buffer write takes one
    /// cycle, as in the buffered baselines).
    ready: Cycle,
    /// Budget the slot was drawn from (returned on pop).
    budget: SlotBudget,
}

/// One virtual queue's chain through the slot array.
#[derive(Debug, Clone, Copy)]
struct VqList {
    head: u32,
    tail: u32,
    len: usize,
}

impl VqList {
    const EMPTY: VqList = VqList {
        head: NIL,
        tail: NIL,
        len: 0,
    };
}

/// The shared buffer bank: a fixed number of slots, a free list, and
/// [`NUM_VQS`] FIFO chains threaded through one `next[]` array.
#[derive(Debug)]
pub struct SharedSlab {
    /// Flit payload arena; holds exactly the occupied slots' flits.
    pool: FlitPool,
    /// Occupied-slot bookkeeping, `None` for free slots.
    meta: Vec<Option<SlotMeta>>,
    /// Chain links: successor in the owning VQ for occupied slots, next
    /// free slot for free ones.
    next: Vec<u32>,
    free_head: u32,
    free_len: usize,
    vqs: [VqList; NUM_VQS],
    /// Whether each VQ currently holds its reserved slot credit.
    has_reserved: [bool; NUM_VQS],
    shared_used: usize,
}

impl SharedSlab {
    /// A slab with `capacity` total slots.
    ///
    /// # Panics
    /// Panics if `capacity < NUM_VQS`: the starvation guard needs one
    /// reserved credit per virtual queue.
    pub fn new(capacity: usize) -> SharedSlab {
        assert!(
            capacity >= NUM_VQS,
            "shared slab needs at least one slot per virtual queue"
        );
        assert!(capacity < NIL as usize, "slab capacity exceeds u32 slots");
        // Free list initially chains slot 0 -> 1 -> ... -> capacity-1.
        let next = (1..=capacity as u32)
            .map(|i| if i as usize == capacity { NIL } else { i })
            .collect();
        SharedSlab {
            pool: FlitPool::with_capacity(capacity),
            meta: vec![None; capacity],
            next,
            free_head: 0,
            free_len: capacity,
            vqs: [VqList::EMPTY; NUM_VQS],
            has_reserved: [false; NUM_VQS],
            shared_used: 0,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.meta.len()
    }

    /// Shared-pool budget (`capacity - NUM_VQS`).
    pub fn shared_cap(&self) -> usize {
        self.capacity() - NUM_VQS
    }

    /// Shared slots currently occupied.
    pub fn shared_used(&self) -> usize {
        self.shared_used
    }

    /// Free slots on the free list.
    pub fn free_len(&self) -> usize {
        self.free_len
    }

    /// Flits currently buffered across all virtual queues.
    pub fn occupancy(&self) -> usize {
        self.capacity() - self.free_len
    }

    pub fn is_empty(&self) -> bool {
        self.free_len == self.capacity()
    }

    /// Occupancy of one virtual queue.
    pub fn vq_len(&self, vq: usize) -> usize {
        self.vqs[vq].len
    }

    /// Whether `vq` currently holds its reserved slot credit.
    pub fn has_reserved(&self, vq: usize) -> bool {
        self.has_reserved[vq]
    }

    /// Whether a push to `vq` would be accepted right now.
    pub fn can_accept(&self, vq: usize) -> bool {
        !self.has_reserved[vq] || self.shared_used < self.shared_cap()
    }

    /// Append `flit` to virtual queue `vq`, readable from cycle `ready`.
    ///
    /// Returns the granted slot index, or the flit back when the queue
    /// already holds its reserved slot and the shared pool is exhausted
    /// (the caller deflects or stalls it).
    pub fn push(&mut self, vq: usize, flit: Flit, ready: Cycle) -> Result<u32, Flit> {
        let budget = if !self.has_reserved[vq] {
            SlotBudget::Reserved
        } else if self.shared_used < self.shared_cap() {
            SlotBudget::Shared
        } else {
            return Err(flit);
        };
        // The starvation guard proves a free slot exists: at most
        // NUM_VQS reserved credits plus shared_cap shared slots can be
        // outstanding, and one of the two budgets just admitted us.
        let slot = self.free_head;
        assert!(slot != NIL, "free list empty despite budget admission");
        self.free_head = self.next[slot as usize];
        self.free_len -= 1;

        let id = self.pool.alloc(flit);
        self.meta[slot as usize] = Some(SlotMeta {
            flit: id,
            ready,
            budget,
        });
        self.next[slot as usize] = NIL;
        let q = &mut self.vqs[vq];
        if q.tail == NIL {
            q.head = slot;
        } else {
            self.next[q.tail as usize] = slot;
        }
        q.tail = slot;
        q.len += 1;
        match budget {
            SlotBudget::Reserved => self.has_reserved[vq] = true,
            SlotBudget::Shared => self.shared_used += 1,
        }
        Ok(slot)
    }

    /// Head flit of `vq` and its ready cycle, without removing it.
    pub fn front(&self, vq: usize) -> Option<(&Flit, Cycle)> {
        let head = self.vqs[vq].head;
        if head == NIL {
            return None;
        }
        let m = self.meta[head as usize].as_ref().expect("head is occupied");
        Some((self.pool.get(m.flit), m.ready))
    }

    /// Remove and return the head flit of `vq` (FIFO order) plus the
    /// budget its slot returns to.
    pub fn pop(&mut self, vq: usize) -> Option<(Flit, SlotBudget)> {
        let q = &mut self.vqs[vq];
        let slot = q.head;
        if slot == NIL {
            return None;
        }
        let m = self.meta[slot as usize].take().expect("head is occupied");
        q.head = self.next[slot as usize];
        if q.head == NIL {
            q.tail = NIL;
        }
        q.len -= 1;
        self.next[slot as usize] = self.free_head;
        self.free_head = slot;
        self.free_len += 1;
        match m.budget {
            SlotBudget::Reserved => self.has_reserved[vq] = false,
            SlotBudget::Shared => self.shared_used -= 1,
        }
        Some((self.pool.take(m.flit), m.budget))
    }

    /// Walk every chain and verify the allocator's structural invariants:
    /// the free list and the VQ chains partition the slot array exactly,
    /// every length counter matches its chain, and the budget counters
    /// match the slot tags. Used by the model checker and tests; `Err`
    /// carries a description of the first violated invariant.
    pub fn check_integrity(&self) -> Result<(), String> {
        let cap = self.capacity();
        let mut seen = vec![false; cap];
        let mut cursor = self.free_head;
        let mut free_walk = 0usize;
        while cursor != NIL {
            let i = cursor as usize;
            if i >= cap {
                return Err(format!("free list points at slot {i} >= capacity {cap}"));
            }
            if seen[i] {
                return Err(format!("slot {i} appears twice (free-list cycle or share)"));
            }
            seen[i] = true;
            if self.meta[i].is_some() {
                return Err(format!("slot {i} is on the free list but occupied"));
            }
            free_walk += 1;
            if free_walk > cap {
                return Err("free list longer than capacity".into());
            }
            cursor = self.next[i];
        }
        if free_walk != self.free_len {
            return Err(format!(
                "free list walk found {free_walk} slots, counter says {}",
                self.free_len
            ));
        }
        let mut reserved_tags = [0usize; NUM_VQS];
        let mut shared_walk = 0usize;
        for (vq, q) in self.vqs.iter().enumerate() {
            let mut cursor = q.head;
            let mut len_walk = 0usize;
            let mut last = NIL;
            while cursor != NIL {
                let i = cursor as usize;
                if i >= cap {
                    return Err(format!("vq {vq} points at slot {i} >= capacity {cap}"));
                }
                if seen[i] {
                    return Err(format!("slot {i} appears twice (double grant)"));
                }
                seen[i] = true;
                let Some(m) = self.meta[i].as_ref() else {
                    return Err(format!("slot {i} is chained in vq {vq} but free"));
                };
                match m.budget {
                    SlotBudget::Reserved => reserved_tags[vq] += 1,
                    SlotBudget::Shared => shared_walk += 1,
                }
                len_walk += 1;
                if len_walk > cap {
                    return Err(format!("vq {vq} chain longer than capacity"));
                }
                last = cursor;
                cursor = self.next[i];
            }
            if len_walk != q.len {
                return Err(format!(
                    "vq {vq} walk found {len_walk} slots, counter says {}",
                    q.len
                ));
            }
            if q.tail != last {
                return Err(format!(
                    "vq {vq} tail {} != last chained slot {last}",
                    q.tail
                ));
            }
            if reserved_tags[vq] > 1 {
                return Err(format!(
                    "vq {vq} holds {} reserved slots (budget is 1)",
                    reserved_tags[vq]
                ));
            }
            if (reserved_tags[vq] == 1) != self.has_reserved[vq] {
                return Err(format!(
                    "vq {vq} reserved flag {} disagrees with chain tags {}",
                    self.has_reserved[vq], reserved_tags[vq]
                ));
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("a slot is on no chain (leaked)".into());
        }
        if shared_walk != self.shared_used {
            return Err(format!(
                "chains hold {shared_walk} shared slots, counter says {}",
                self.shared_used
            ));
        }
        if self.shared_used > self.shared_cap() {
            return Err(format!(
                "shared budget exceeded: {} > {}",
                self.shared_used,
                self.shared_cap()
            ));
        }
        if self.pool.live() != self.occupancy() {
            return Err(format!(
                "arena holds {} flits, chains hold {}",
                self.pool.live(),
                self.occupancy()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::flit::PacketId;
    use noc_core::types::NodeId;

    fn flit(tag: u64) -> Flit {
        Flit::synthetic(PacketId(tag), NodeId(0), NodeId(1), tag)
    }

    #[test]
    fn fifo_order_per_vq() {
        let mut s = SharedSlab::new(16);
        for i in 0..4 {
            s.push(2, flit(i), 0).unwrap();
        }
        s.push(0, flit(99), 0).unwrap();
        for i in 0..4 {
            assert_eq!(s.pop(2).unwrap().0.packet, PacketId(i));
        }
        assert_eq!(s.pop(2), None);
        assert_eq!(s.pop(0).unwrap().0.packet, PacketId(99));
        assert!(s.is_empty());
        s.check_integrity().unwrap();
    }

    #[test]
    fn empty_vq_always_accepts_at_saturation() {
        let mut s = SharedSlab::new(16);
        // Saturate vq 0: its reserved slot + the whole shared pool.
        let mut accepted = 0;
        for i in 0.. {
            match s.push(0, flit(i), 0) {
                Ok(_) => accepted += 1,
                Err(_) => break,
            }
        }
        assert_eq!(accepted, 1 + s.shared_cap(), "reserved + shared budget");
        assert_eq!(s.shared_used(), s.shared_cap());
        // Every other (empty) vq still accepts exactly its reserved slot.
        for vq in 1..NUM_VQS {
            assert!(s.can_accept(vq));
            s.push(vq, flit(100 + vq as u64), 0).unwrap();
            assert!(!s.can_accept(vq), "second push exceeds every budget");
        }
        assert_eq!(s.occupancy(), s.capacity());
        assert_eq!(s.free_len(), 0);
        s.check_integrity().unwrap();
    }

    #[test]
    fn budgets_are_returned_on_pop() {
        let mut s = SharedSlab::new(8);
        s.push(1, flit(0), 0).unwrap();
        s.push(1, flit(1), 0).unwrap();
        assert!(s.has_reserved(1));
        assert_eq!(s.shared_used(), 1);
        // Head is the reserved slot (pushed first).
        assert_eq!(s.pop(1).unwrap().1, SlotBudget::Reserved);
        assert!(!s.has_reserved(1));
        assert_eq!(s.shared_used(), 1);
        // Next push re-draws the reserved credit even mid-queue.
        s.push(1, flit(2), 0).unwrap();
        assert!(s.has_reserved(1));
        assert_eq!(s.pop(1).unwrap().1, SlotBudget::Shared);
        assert_eq!(s.pop(1).unwrap().1, SlotBudget::Reserved);
        assert!(s.is_empty());
        s.check_integrity().unwrap();
    }

    #[test]
    fn ready_cycles_travel_with_flits() {
        let mut s = SharedSlab::new(8);
        s.push(3, flit(7), 42).unwrap();
        let (f, ready) = s.front(3).unwrap();
        assert_eq!(f.packet, PacketId(7));
        assert_eq!(ready, 42);
    }

    #[test]
    fn slot_reuse_keeps_chains_intact() {
        let mut s = SharedSlab::new(8);
        // Churn pushes and pops across queues so slots recycle heavily.
        let mut tag = 0u64;
        for round in 0..200 {
            for vq in 0..NUM_VQS {
                if s.can_accept(vq) {
                    s.push(vq, flit(tag), round).unwrap();
                    tag += 1;
                }
            }
            let victim = (round as usize * 3 + 1) % NUM_VQS;
            s.pop(victim);
            s.pop((victim + 2) % NUM_VQS);
            s.check_integrity().unwrap();
        }
    }
}

//! Adverse traffic patterns: which designs hold up when the pattern fights
//! the routing algorithm?
//!
//! Runs all nine synthetic patterns of the paper (UR, NUR, BR, BF, CP, MT,
//! PS, NB, TOR) at an offered load of 0.3 of capacity and prints throughput
//! and energy per design — a miniature of the paper's Figs. 7 and 8. The
//! bit-permutation patterns (BR, BF, MT, PS) favour adaptive routing, so
//! DXbar WF is expected to close on (or beat) DXbar DOR there.
//!
//! ```text
//! cargo run --release --example adverse_traffic
//! ```

use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic, Design, SimConfig};

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 6_000,
        drain_cycles: 3_000,
        ..SimConfig::default()
    };
    let load = 0.3;
    let designs = [
        Design::FlitBless,
        Design::Scarab,
        Design::Buffered8,
        Design::DXbarDor,
        Design::DXbarWf,
    ];

    println!("offered load = {load} of capacity; accepted throughput (fraction of capacity)");
    print!("{:<9}", "pattern");
    for d in designs {
        print!(" {:>12}", d.name());
    }
    println!();

    for pattern in Pattern::ALL {
        print!("{:<9}", pattern.abbrev());
        for d in designs {
            let r = run_synthetic(d, &cfg, pattern, load);
            print!(" {:>12.3}", r.accepted_fraction);
        }
        println!();
    }

    println!("\nenergy per packet (nJ)");
    print!("{:<9}", "pattern");
    for d in designs {
        print!(" {:>12}", d.name());
    }
    println!();
    for pattern in Pattern::ALL {
        print!("{:<9}", pattern.abbrev());
        for d in designs {
            let r = run_synthetic(d, &cfg, pattern, load);
            print!(" {:>12.2}", r.avg_packet_energy_nj);
        }
        println!();
    }
}

//! Fault tolerance: DXbar with a growing fraction of broken crossbars.
//!
//! Injects permanent single-crossbar faults into 0 %, 25 %, 50 %, 75 % and
//! 100 % of the routers (100 % = one crossbar failing at every router, the
//! paper's extreme case) and reports throughput, latency and power for
//! both DOR and West-First routing — a miniature of Figs. 11 and 12.
//! Expected shape: DOR degrades gracefully (< 10 %), WF suffers more, and
//! power rises as more flits are forced through the buffers.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic_with_faults, Design, SimConfig};

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 8_000,
        drain_cycles: 4_000,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    let load = 0.35;

    println!("uniform random @ load {load}; faults manifest during warmup");
    println!(
        "{:<10} {:>7} {:>10} {:>12} {:>14}",
        "design", "faults", "accepted", "latency(cyc)", "energy(nJ/pkt)"
    );
    for design in [Design::DXbarDor, Design::DXbarWf] {
        for percent in [0u32, 25, 50, 75, 100] {
            let plan = FaultPlan::generate(
                &mesh,
                percent as f64 / 100.0,
                cfg.warmup_cycles / 2,
                cfg.warmup_cycles,
                cfg.seed,
            );
            let r = run_synthetic_with_faults(design, &cfg, Pattern::UniformRandom, load, &plan);
            println!(
                "{:<10} {:>6}% {:>10.3} {:>12.1} {:>14.2}",
                design.name(),
                percent,
                r.accepted_fraction,
                r.avg_packet_latency,
                r.avg_packet_energy_nj
            );
        }
        println!();
    }
}

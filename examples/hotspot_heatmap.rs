//! Spatial view of congestion: run hot-spot traffic (NUR) on DXbar and
//! print where the flits pile up — router buffers and injection backlogs —
//! as text heatmaps.
//!
//! ```text
//! cargo run --release --example hotspot_heatmap
//! ```

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_sim::diagnostics::snapshot;
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::generator::SyntheticTraffic;
use dxbar_noc::noc_traffic::patterns::{BoundPattern, Pattern};
use dxbar_noc::{Design, SimConfig};

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);

    // Show where NUR's hot spots landed for this seed.
    let bound = BoundPattern::new(Pattern::NonUniformRandom, mesh, cfg.seed);
    println!("NUR hot-spot nodes: {:?}\n", bound.hotspots());

    let mut net = Design::DXbarDor.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = SyntheticTraffic::new(
        Pattern::NonUniformRandom,
        mesh,
        cfg.injection_rate(0.5),
        1,
        cfg.seed,
    );

    for checkpoint in [500u64, 2_000, 8_000] {
        while net.cycle() < checkpoint {
            net.step(&mut model);
        }
        let snap = snapshot(&net);
        println!("=== cycle {checkpoint} ===");
        println!("{}", snap.occupancy.render());
        println!("{}", snap.source_backlog.render());
    }

    let snap = snapshot(&net);
    println!(
        "final imbalance: occupancy {:.2}, backlog {:.2} (0 = perfectly even)",
        snap.occupancy.imbalance(),
        snap.source_backlog.imbalance()
    );
}

//! Quickstart: compare all router designs on uniform-random traffic.
//!
//! Runs every design at a few offered loads on the paper's 8x8 mesh and
//! prints accepted throughput, latency and energy per packet — a miniature
//! of the paper's Figs. 5 and 6.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic, Design, SimConfig};

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 8_000,
        drain_cycles: 4_000,
        ..SimConfig::default()
    };

    println!(
        "8x8 mesh, uniform random traffic, capacity = {:.2} flits/node/cycle",
        cfg.capacity_per_node()
    );
    println!(
        "{:<17} {:>6} {:>10} {:>12} {:>12}",
        "design", "load", "accepted", "latency(cyc)", "energy(nJ/pkt)"
    );

    for design in Design::ALL {
        for load in [0.1, 0.3, 0.45, 0.6] {
            let r = run_synthetic(design, &cfg, Pattern::UniformRandom, load);
            println!(
                "{:<17} {:>6.2} {:>10.3} {:>12.1} {:>12.2}",
                design.name(),
                load,
                r.accepted_fraction,
                r.avg_packet_latency,
                r.avg_packet_energy_nj
            );
        }
        println!();
    }
}

//! SPLASH-2 style closed-loop workloads: execution time and energy.
//!
//! Runs the nine-application coherence workload model to completion on a
//! few designs and prints execution time (normalized to Buffered 4) and
//! energy — a miniature of the paper's Figs. 9 and 10. Because the MSHR
//! window throttles each core, lower network latency directly shortens
//! execution time.
//!
//! ```text
//! cargo run --release --example splash_workload
//! ```

use dxbar_noc::noc_traffic::splash::SplashApp;
use dxbar_noc::{run_splash, Design, SimConfig};

fn main() {
    let cfg = SimConfig::default();
    let designs = [
        Design::FlitBless,
        Design::Scarab,
        Design::Buffered4,
        Design::DXbarDor,
    ];
    let max_cycles = 3_000_000;

    println!("execution time normalized to Buffered 4 (lower is better)");
    print!("{:<11}", "app");
    for d in designs {
        print!(" {:>11}", d.name());
    }
    println!("  | energy (uJ): same order");

    for app in [
        SplashApp::Fft,
        SplashApp::Ocean,
        SplashApp::Water,
        SplashApp::Radix,
    ] {
        let base = run_splash(Design::Buffered4, &cfg, app, max_cycles);
        let base_time = base.finish_cycle.expect("baseline must finish") as f64;
        print!("{:<11}", app.name());
        let mut energies = Vec::new();
        for d in designs {
            let r = run_splash(d, &cfg, app, max_cycles);
            let t = r.finish_cycle.map(|c| c as f64 / base_time);
            match t {
                Some(t) => print!(" {:>11.3}", t),
                None => print!(" {:>11}", "DNF"),
            }
            energies.push(r.energy.total_pj() / 1e6);
        }
        print!("  |");
        for e in energies {
            print!(" {e:>8.2}");
        }
        println!();
    }
}

//! Per-flit lifecycle tracing: run one small DXbar experiment with a
//! recording trace sink attached, then dissect the event stream — the
//! aggregate lifetime summary, the slowest individual packets, and a
//! JSONL/Chrome export you can load into Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example trace_lifetimes
//! ```
//!
//! For a full CLI around the same machinery (design/pattern/load/output
//! knobs), use `cargo run --release -p bench --bin trace_run`.

use dxbar_noc::noc_sim::noc_trace::{chrome_trace_json, to_jsonl, RecordingSink, TraceEvent};
use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic_traced, Design, SimConfig};
use std::fs;

fn main() {
    // A short 4x4 run keeps the event stream small enough to read whole.
    let cfg = SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 200,
        measure_cycles: 1_000,
        drain_cycles: 500,
        ..SimConfig::default()
    };

    // capacity 0 = unbounded ring (keep every event); sample every cycle.
    let sink = RecordingSink::new(0, 1);
    let (result, sink) =
        run_synthetic_traced(Design::DXbarDor, &cfg, Pattern::UniformRandom, 0.35, sink);

    println!(
        "DXbar (DOR), uniform random @ 0.35 offered load: avg packet latency {:.1} cycles, \
         accepted {:.3} flits/node/cycle\n",
        result.avg_packet_latency, result.accepted_rate
    );

    // 1. Aggregate lifetime view: conservation + exact latency percentiles.
    let s = sink.lifetimes.summary();
    println!(
        "flits: {} injected = {} ejected + {} dropped + {} in flight",
        s.injected, s.ejected, s.dropped, s.in_flight
    );
    println!(
        "latency (incl. source queueing): mean {:.1}, p50 {}, p90 {}, p99 {}, max {}\n",
        s.mean_latency, s.p50, s.p90, s.p99, s.max_latency
    );

    // 2. The individual packets that fared worst.
    println!("slowest flits:");
    println!("  packet  src -> end   injected  finished  net lat  total lat");
    for l in sink.lifetimes.top_slowest(5) {
        println!(
            "  {:>6}  {:>3} -> {:>3}   {:>8}  {:>8}  {:>7}  {:>9}",
            l.packet,
            l.src,
            l.end_node,
            l.injected,
            l.finished,
            l.network_latency(),
            l.reported_latency
        );
    }

    // 3. What the event stream itself looks like: replay one flit's life.
    let events: Vec<TraceEvent> = sink.recorder.iter().cloned().collect();
    if let Some(worst) = sink.lifetimes.top_slowest(1).first() {
        println!("\nevent-by-event life of packet {}:", worst.packet);
        for ev in events.iter().filter(|e| {
            e.packet().map(|p| p.0) == Some(worst.packet)
                && e.flit_index() == Some(worst.flit_index)
        }) {
            println!("  {ev:?}");
        }
    }

    // 4. Per-cycle time series sampled alongside the events.
    println!(
        "\nnetwork occupancy: mean {:.2} flits buffered/node, {:.1} link traversals/cycle",
        sink.series.mean_node_occupancy().iter().sum::<f64>()
            / cfg.width as f64
            / cfg.height as f64,
        sink.series.mean_link_utilization()
    );

    // 5. Exports: JSONL for ad-hoc analysis, Chrome trace for Perfetto.
    fs::write("trace_lifetimes.jsonl", to_jsonl(&events)).expect("write jsonl");
    fs::write("trace_lifetimes_chrome.json", chrome_trace_json(&events)).expect("write chrome");
    println!(
        "\nwrote {} events to trace_lifetimes.jsonl and trace_lifetimes_chrome.json \
         (open the latter in ui.perfetto.dev)",
        events.len()
    );
}

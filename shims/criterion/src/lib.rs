//! Offline stand-in for the `criterion` crate.
//!
//! Covers the API surface the workspace benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple calibrate-then-sample wall-clock harness instead of
//! criterion's statistical machinery. Results print as median ns/iter with
//! a min..max spread across samples.
//!
//! Knobs: `DXBAR_QUICK=1` shrinks per-sample time ~10x (CI smoke runs);
//! `CRITERION_SAMPLE_MS` overrides the per-sample measurement window.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Runs one benchmark routine repeatedly; see [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn sample_window() -> Duration {
    if let Ok(ms) = std::env::var("CRITERION_SAMPLE_MS") {
        if let Ok(ms) = ms.parse::<u64>() {
            return Duration::from_millis(ms.max(1));
        }
    }
    if std::env::var("DXBAR_QUICK").is_ok() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(20)
    }
}

fn run_one(label: &str, samples: usize, mut routine: impl FnMut(&mut Bencher)) {
    let window = sample_window();

    // Calibrate: grow the iteration count until one sample fills the window.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= window || iters >= 1 << 24 {
            break;
        }
        // Aim straight at the window with 2x headroom, growth capped at 16x.
        let target = window.as_nanos().max(1) as f64;
        let got = b.elapsed.as_nanos().max(1) as f64;
        let factor = (2.0 * target / got).clamp(2.0, 16.0);
        iters = ((iters as f64 * factor) as u64).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{label:<44} time: [{lo:>10.1} ns {median:>10.1} ns {hi:>10.1} ns]  ({iters} iters/sample)"
    );
}

/// Top-level benchmark driver, handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a standalone benchmark. `name` is anything string-like, as in
    /// real criterion (which takes `id: impl Into<String>`).
    pub fn bench_function<S: AsRef<str>, R: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        routine: R,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn bench_function<S: AsRef<str>, R: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        routine: R,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            routine,
        );
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut calls = 0u64;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}

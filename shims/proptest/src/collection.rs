//! Collection strategies (`collection::vec`).

use crate::runtime::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Inclusive element-count bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose length lies in `size` and whose elements
/// come from `elem`.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.gen_range(span) as usize;
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// `collection::vec(strategy, 0..200)` — sized vector strategy.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_span_range() {
        let mut rng = TestRng::seed_from(7);
        let s = vec(0u8..10, 2..6);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen[2] && seen[5]);
    }
}

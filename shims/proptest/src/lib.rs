//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of proptest its tests use: the `proptest!` macro, integer /
//! float range strategies, `any::<T>()`, `collection::vec`,
//! `sample::select`, tuples, `Just`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Deterministic cases.** Each test's case stream derives from a hash
//!   of its name (override with `PROPTEST_SEED`), so failures reproduce
//!   exactly in CI without a persistence file. `.proptest-regressions`
//!   files are NOT read.
//! * **No shrinking.** On failure the full sampled inputs are printed;
//!   cases here are small enough to debug unshrunk.
//! * `PROPTEST_CASES` overrides the per-test case count globally.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod runtime;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fail the case
/// (with the sampled inputs printed) instead of panicking mid-shrink.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional formatted message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                            stringify!($left),
                            stringify!($right),
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  left: {l:?}\n right: {r:?}",
                            format!($($fmt)+),
                        )),
                    );
                }
            }
        }
    };
}

/// `prop_assert_ne!(left, right)` with an optional formatted message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} != {}`\n  both: {l:?}",
                            stringify!($left),
                            stringify!($right),
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}\n  both: {l:?}",
                            format!($($fmt)+),
                        )),
                    );
                }
            }
        }
    };
}

/// `prop_assume!(cond)` — silently skip the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The `proptest!` block macro: wraps each contained test in a loop over
/// deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::runtime::case_count(cfg.cases);
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case_idx in 0..cases {
                let mut __rng = $crate::runtime::rng_for(test_path, case_idx);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __desc = {
                    let mut d = String::new();
                    $(d.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)*
                    d
                };
                let __guard = $crate::runtime::CaseGuard::new(test_path, case_idx, &__desc);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __guard.disarm();
                match __result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case_idx} of {test_path} failed:\n{msg}\nwith inputs:\n{__desc}"
                        );
                    }
                }
            }
        }
    )*};
}

//! `proptest::option::of` — wrap a strategy in `Option`, `None` one case
//! in four (matching this shim's `Arbitrary for Option<T>`).

use crate::runtime::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;

#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// Strategy for `Option<S::Value>` that is `Some` three cases in four.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::rng_for;

    #[test]
    fn produces_both_variants() {
        let mut rng = rng_for("option::produces_both_variants", 0);
        let s = of(0u8..8);
        let vals: Vec<Option<u8>> = (0..64).map(|_| s.sample(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().flatten().all(|&v| v < 8));
    }
}

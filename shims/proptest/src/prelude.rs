//! One-stop imports mirroring `proptest::prelude::*`.

pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// Real proptest re-exports itself as `prop` so strategies can be written
/// as `prop::collection::vec(...)` / `prop::sample::select(...)`.
pub use crate as prop;

//! Deterministic case generation machinery: a small xoshiro256** PRNG
//! (independent copy — the shim must not depend on workspace crates),
//! per-test seeding, and the panic-time input reporter.

/// SplitMix64, used to expand seeds into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator backing all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift rejection.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)` from the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a over the test path, mixed with `PROPTEST_SEED` when set, so each
/// test gets an independent but reproducible case stream.
pub fn rng_for(test_path: &str, case_idx: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    TestRng::seed_from(h ^ base.rotate_left(17) ^ ((case_idx as u64) << 32 | case_idx as u64))
}

/// Resolve the case count: `PROPTEST_CASES` env var beats the config.
pub fn case_count(configured: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(configured)
        .max(1)
}

/// Prints the sampled inputs if the case body panics (there is no
/// shrinking, so the raw inputs are the reproduction recipe).
pub struct CaseGuard<'a> {
    test_path: &'a str,
    case_idx: u32,
    desc: &'a str,
    armed: bool,
}

impl<'a> CaseGuard<'a> {
    pub fn new(test_path: &'a str, case_idx: u32, desc: &'a str) -> Self {
        CaseGuard {
            test_path,
            case_idx,
            desc,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest case {} of {} panicked with inputs:\n{}",
                self.case_idx, self.test_path, self.desc
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let a: Vec<u64> = (0..4).map(|_| rng_for("t::x", 3).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(rng_for("t::x", 3).next_u64(), rng_for("t::x", 4).next_u64());
        assert_ne!(rng_for("t::x", 3).next_u64(), rng_for("t::y", 3).next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = TestRng::seed_from(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }
}

//! `sample::select` — draw uniformly from an explicit candidate list.

use crate::runtime::TestRng;
use crate::strategy::Strategy;

/// Strategy yielding clones of one of the provided candidates.
#[derive(Debug, Clone)]
pub struct Select<T: Clone + std::fmt::Debug>(Vec<T>);

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0[rng.gen_range(self.0.len() as u64) as usize].clone()
    }
}

/// `sample::select(vec![...])` — uniform choice among the candidates.
pub fn select<T: Clone + std::fmt::Debug>(candidates: Vec<T>) -> Select<T> {
    assert!(
        !candidates.is_empty(),
        "select needs at least one candidate"
    );
    Select(candidates)
}

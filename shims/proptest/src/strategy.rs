//! Value-generation strategies: ranges, `any::<T>()`, `Just`, tuples, and
//! `prop_map`.

use crate::runtime::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of one type. Unlike real proptest there is
/// no value tree / shrinking: `sample` draws the final value directly.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy by mapping sampled values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_range(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.gen_range(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // gen_f64 is half-open; fold the missing endpoint in by drawing on
        // a slightly wider lattice and clamping.
        let (lo, hi) = (*self.start(), *self.end());
        let x = lo + rng.gen_f64() * (hi - lo) * (1.0 + 1e-9);
        x.min(hi)
    }
}

/// Types with a canonical "whole domain" strategy, as used by `any::<T>()`.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_f64()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.gen_range(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

/// Strategy over a type's whole domain; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — sample anywhere in `T`'s domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from(1);
        for _ in 0..500 {
            let a = (3u16..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&b));
            let c = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&c));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::seed_from(2);
        let s = (1usize..4, 0.0f64..1.0).prop_map(|(n, p)| vec![p; n]);
        let v = s.sample(&mut rng);
        assert!((1..4).contains(&v.len()));
    }

    #[test]
    fn option_hits_both_variants() {
        let mut rng = TestRng::seed_from(3);
        let hits: Vec<Option<u8>> = (0..64).map(|_| Option::arbitrary(&mut rng)).collect();
        assert!(hits.iter().any(|x| x.is_none()));
        assert!(hits.iter().any(|x| x.is_some()));
    }
}

//! Config and per-case error types for the vendored proptest stand-in.

/// Mirror of proptest's config struct, reduced to the knobs this workspace
/// sets. Construct with struct-update syntax:
/// `ProptestConfig { cases: 24, ..ProptestConfig::default() }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each `proptest!` test runs (`PROPTEST_CASES` wins).
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejects never abort a run here.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single proptest case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` filtered this case out; it is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

//! Offline stand-in for the `rayon` crate.
//!
//! Implements the one pattern this workspace uses —
//! `slice.par_iter().map(f).collect()` — with `std::thread::scope` fanning
//! contiguous chunks out across the available cores. Results land in
//! pre-assigned slots, so output order always matches input order exactly
//! as with real rayon's indexed parallel iterators.
//!
//! The `DXBAR_JOBS` environment variable caps the worker-thread count
//! (CI runners and laptops set it instead of always fanning out to every
//! core); unset or invalid values fall back to `available_parallelism`.

use std::num::NonZeroUsize;

/// Maximum worker threads: `DXBAR_JOBS` if set to a positive integer,
/// otherwise the number of available cores.
pub fn max_threads() -> usize {
    std::env::var("DXBAR_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Entry point mirroring rayon's `par_iter()` on slices (and, via deref,
/// `Vec`s).
pub trait IntoParallelRefIterator {
    type Item;

    fn par_iter(&self) -> ParIter<'_, Self::Item>;
}

impl<T: Sync> IntoParallelRefIterator for [T] {
    type Item = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let threads = max_threads().min(n.max(1));
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in self.items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        slots.into_iter().map(|r| r.unwrap()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dxbar_jobs_caps_threads_without_changing_results() {
        // Results are slot-assigned, so any thread cap yields identical
        // output; this checks the cap is parsed and correctness holds.
        std::env::set_var("DXBAR_JOBS", "2");
        assert_eq!(crate::max_threads(), 2);
        let xs: Vec<u64> = (0..97).collect();
        let out: Vec<u64> = xs.par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
        std::env::set_var("DXBAR_JOBS", "not-a-number");
        assert!(crate::max_threads() >= 1);
        std::env::remove_var("DXBAR_JOBS");
        assert!(crate::max_threads() >= 1);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of serde it actually uses: `Serialize` /
//! `Deserialize` traits over a JSON-shaped [`value::Value`] data model,
//! plus a derive macro (feature `derive`) covering named-field structs,
//! tuple structs and unit-variant enums — exactly the shapes the simulator
//! serializes. `serde_json` (also vendored) renders and parses the model.
//!
//! The simplification relative to real serde: there is no generic
//! `Serializer`/`Deserializer` driver, serialization always goes through
//! the owned `Value` tree. For the report-sized payloads this workspace
//! writes, that is plenty — and the object model preserves field order, so
//! output is byte-deterministic.

pub mod value;

pub use value::{Error, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // `null` round-trips non-finite floats (see `write_f64`).
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

// `Value` round-trips through itself (real serde_json has the same
// self-describing behaviour for its Value).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// Borrowed strings serialize fine but cannot be rebuilt without the
// zero-copy lifetime machinery of real serde; structs holding `&'static
// str` (the SPLASH parameter tables) are written out, never parsed back.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Err(Error::msg(format!(
            "cannot deserialize borrowed str (from {v:?}); use String"
        )))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let xs: Vec<T> = Vec::from_value(v)?;
        let got = xs.len();
        <[T; N]>::try_from(xs)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let xs = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected tuple array, got {v:?}")))?;
                Ok(($($t::from_value(
                    xs.get($idx)
                        .ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

//! The self-describing data model every `Serialize` impl targets.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a hash map) so
//! serialized output is deterministic — byte-identical across runs and
//! across threads, which the simulator's reproducibility tests rely on.

use std::fmt;

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (the common case for counters).
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that returns `Null` when absent — the form the
    /// derive macro uses so `Option` fields tolerate missing keys.
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON with 2-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    x.write_json(out, indent, depth + 1);
                }
                if !xs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; mirror JavaScript's JSON.stringify.
        out.push_str("null");
        return;
    }
    // Rust's float Display is shortest-roundtrip, so parse(print(x)) == x.
    let s = x.to_string();
    out.push_str(&s);
    // Keep a float marker so the value parses back as F64, not an integer.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Index by field name: `v["design"]`; missing keys yield `Null` (matching
/// `serde_json`'s panic-free indexing).
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

/// Index into arrays: `v[0]`.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(xs) => xs.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented without `syn`/`quote` (offline build): the macro hand-parses
//! the token stream just far enough to recover the item's shape. Supported
//! shapes — the only ones this workspace derives on:
//!
//! * structs with named fields  -> JSON object, fields in declaration order;
//! * tuple structs with one field (newtypes) -> the inner value, transparent;
//! * tuple structs with several fields -> JSON array;
//! * enums whose variants are all unit variants -> the variant name as a
//!   JSON string (discriminants like `North = 0` are accepted and ignored).
//!
//! Anything else (generics, payload-carrying variants) produces a
//! `compile_error!` pointing here; hand-write the impl instead.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and doc comments.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // the attribute group follows
                if matches!(&tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    // Skip visibility: `pub`, optionally followed by `(crate)` etc.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive for generic type `{name}`; write the impl by hand"
        ));
    }

    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected item body for `{name}`, got {other:?}")),
    };

    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => {
            let fields = parse_named_fields(body.stream())?;
            Ok(Shape::NamedStruct { name, fields })
        }
        ("struct", Delimiter::Parenthesis) => {
            let arity = count_top_level_fields(body.stream());
            Ok(Shape::TupleStruct { name, arity })
        }
        ("enum", Delimiter::Brace) => {
            let variants = parse_unit_variants(&name, body.stream())?;
            Ok(Shape::UnitEnum { name, variants })
        }
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

/// Split a brace-group's tokens on top-level commas.
fn split_on_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut groups = Vec::new();
    let mut current = Vec::new();
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    groups.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

fn skip_attrs_and_vis(tokens: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_on_commas(stream) {
        let i = skip_attrs_and_vis(&chunk);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
    Ok(fields)
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_on_commas(stream).len()
}

fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for chunk in split_on_commas(stream) {
        let i = skip_attrs_and_vis(&chunk);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        // Accept `Name`, `Name = <discriminant>`; reject `Name(..)` / `Name{..}`.
        match chunk.get(i + 1) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{enum_name}::{name}` carries data; \
                     hand-write Serialize/Deserialize for this enum"
                ));
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field({f:?})).map_err(\
                             |e| ::serde::Error::msg(format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(xs.get({i}).ok_or_else(\
                             || ::serde::Error::msg(\"{name}: tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let xs = v.as_array().ok_or_else(\
                             || ::serde::Error::msg(\"{name}: expected array\"))?;\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(\
                             || ::serde::Error::msg(\"{name}: expected variant string\"))?;\n\
                         match s {{ {}, other => Err(::serde::Error::msg(\
                             format!(\"unknown {name} variant {{other:?}}\"))) }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().unwrap()
}

//! Offline stand-in for `serde_json`, over the vendored serde [`Value`]
//! model: `to_string`, `to_string_pretty`, `from_str`, `from_slice`, and a
//! recursive-descent JSON parser.

pub use serde::value::{Error, Value};

/// Render any serializable value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Render any serializable value as pretty (2-space indented) JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Convert a serializable value into the [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from the [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parse JSON bytes into a typed value.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parse JSON text into the generic [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5"] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":-2.5}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn index_and_accessors() {
        let v = parse(r#"{"design":"DXbar","x":1.5,"n":3}"#).unwrap();
        assert_eq!(v["design"], "DXbar");
        assert_eq!(v["x"].as_f64(), Some(1.5));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn float_integers_keep_marker() {
        let v = Value::F64(2.0);
        assert_eq!(v.to_json(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::F64(2.0));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}

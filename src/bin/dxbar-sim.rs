//! `dxbar-sim` — command-line front end for one-off simulations.
//!
//! ```text
//! dxbar-sim --design dxbar-dor --pattern UR --load 0.4
//! dxbar-sim --design buffered8 --pattern MT --load 0.3 --mesh 4x4 --seed 7
//! dxbar-sim --design dxbar-wf --pattern UR --load 0.35 --faults 50
//! dxbar-sim --design dxbar-dor --splash ocean
//! dxbar-sim --list
//! ```
//!
//! Argument parsing is std-only (no extra dependencies); see `--help`.

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::noc_traffic::splash::SplashApp;
use dxbar_noc::{
    run_splash, run_splash_verified, run_synthetic_verified, run_synthetic_with_faults, Design,
    RunResult, SimConfig,
};

const HELP: &str = "\
dxbar-sim — cycle-accurate NoC simulation of the DXbar paper's designs

USAGE:
    dxbar-sim [OPTIONS]

OPTIONS:
    --design <NAME>     flit-bless | scarab | buffered4 | buffered8 |
                        dxbar-dor | dxbar-wf | unified-dor | unified-wf |
                        afc | damq | minbd
                        (default: dxbar-dor)
    --pattern <ABBREV>  UR NUR BR BF CP MT PS NB TOR   (default: UR)
    --load <FRACTION>   offered load, fraction of capacity (default: 0.4)
    --splash <APP>      closed-loop workload instead of a pattern:
                        fft lu radiosity ocean raytrace radix water fmm barnes
    --mesh <WxH>        mesh dimensions (default: 8x8)
    --cycles <N>        measurement window in cycles (default: 30000)
    --warmup <N>        warmup cycles (default: 10000)
    --seed <N>          PRNG seed (default: paper seed)
    --faults <PERCENT>  fraction of routers with one broken crossbar
                        (DXbar designs only; default: 0)
    --json              print the full RunResult as JSON
    --verify            attach the runtime-oracle suite (flit conservation,
                        crossbar exclusivity, route legality, FIFO bounds,
                        fairness, deadlock watchdog); exits 1 on any
                        violation (also enabled by DXBAR_VERIFY=1)
    --list              list designs, patterns and apps, then exit
    --help              this text
";

fn parse_design(s: &str) -> Option<Design> {
    Some(match s.to_ascii_lowercase().as_str() {
        "flit-bless" | "bless" => Design::FlitBless,
        "scarab" => Design::Scarab,
        "buffered4" | "b4" => Design::Buffered4,
        "buffered8" | "b8" => Design::Buffered8,
        "dxbar-dor" | "dxbar" => Design::DXbarDor,
        "dxbar-wf" => Design::DXbarWf,
        "unified-dor" | "unified" => Design::UnifiedDor,
        "unified-wf" => Design::UnifiedWf,
        "afc" => Design::Afc,
        "damq" => Design::Damq,
        "minbd" | "min-bd" => Design::MinBd,
        _ => return None,
    })
}

fn parse_app(s: &str) -> Option<SplashApp> {
    SplashApp::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(s))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{HELP}");
    std::process::exit(2)
}

struct Args {
    design: Design,
    pattern: Pattern,
    splash: Option<SplashApp>,
    load: f64,
    cfg: SimConfig,
    fault_pct: f64,
    json: bool,
    verify: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        design: Design::DXbarDor,
        pattern: Pattern::UniformRandom,
        splash: None,
        load: 0.4,
        cfg: SimConfig::default(),
        fault_pct: 0.0,
        json: false,
        verify: dxbar_noc::noc_verify::verify_from_env(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            "--list" => {
                println!("designs : flit-bless scarab buffered4 buffered8 dxbar-dor dxbar-wf unified-dor unified-wf afc damq minbd");
                print!("patterns:");
                for p in Pattern::ALL {
                    print!(" {}", p.abbrev());
                }
                print!("\napps    :");
                for a in SplashApp::ALL {
                    print!(" {}", a.name().to_ascii_lowercase());
                }
                println!();
                std::process::exit(0);
            }
            "--design" => {
                let v = value("--design");
                args.design = parse_design(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown design '{v}'; known designs: flit-bless scarab \
                         buffered4 buffered8 dxbar-dor dxbar-wf unified-dor \
                         unified-wf afc damq minbd"
                    ))
                });
            }
            "--pattern" => {
                let v = value("--pattern");
                args.pattern = Pattern::from_abbrev(&v.to_ascii_uppercase()).unwrap_or_else(|| {
                    let known: Vec<&str> = Pattern::ALL.iter().map(|p| p.abbrev()).collect();
                    fail(&format!(
                        "unknown pattern '{v}'; known patterns: {}",
                        known.join(" ")
                    ))
                });
            }
            "--splash" => {
                let v = value("--splash");
                args.splash = Some(parse_app(&v).unwrap_or_else(|| {
                    let known: Vec<String> = SplashApp::ALL
                        .iter()
                        .map(|a| a.name().to_ascii_lowercase())
                        .collect();
                    fail(&format!(
                        "unknown app '{v}'; known apps: {}",
                        known.join(" ")
                    ))
                }));
            }
            "--load" => {
                let v = value("--load");
                args.load = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad load '{v}'")));
                if !(0.0..=1.0).contains(&args.load) {
                    fail("load must be in [0, 1]");
                }
            }
            "--mesh" => {
                let v = value("--mesh");
                let (w, h) = v
                    .split_once('x')
                    .unwrap_or_else(|| fail(&format!("mesh must look like 8x8, got '{v}'")));
                args.cfg.width = w.parse().unwrap_or_else(|_| fail("bad mesh width"));
                args.cfg.height = h.parse().unwrap_or_else(|_| fail("bad mesh height"));
            }
            "--cycles" => {
                args.cfg.measure_cycles = value("--cycles")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --cycles"));
            }
            "--warmup" => {
                args.cfg.warmup_cycles = value("--warmup")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --warmup"));
            }
            "--seed" => {
                args.cfg.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed"));
            }
            "--faults" => {
                let v: f64 = value("--faults")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --faults"));
                if !(0.0..=100.0).contains(&v) {
                    fail("faults must be a percentage in [0, 100]");
                }
                args.fault_pct = v / 100.0;
            }
            "--json" => args.json = true,
            "--verify" => args.verify = true,
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if let Err(e) = args.cfg.validate() {
        fail(&e);
    }
    if args.fault_pct > 0.0 && !args.design.supports_faults() {
        fail("--faults is only meaningful for dxbar-dor / dxbar-wf (as in the paper)");
    }
    args
}

fn print_human(r: &RunResult) {
    println!("design            {}", r.design);
    println!("traffic           {}", r.traffic);
    if let Some(l) = r.offered_load {
        println!("offered load      {l:.3} of capacity");
    }
    println!(
        "accepted load     {:.3} of capacity ({:.4} flits/node/cycle)",
        r.accepted_fraction, r.accepted_rate
    );
    println!("packets delivered {}", r.accepted_packets);
    println!("avg pkt latency   {:.1} cycles", r.avg_packet_latency);
    println!("avg flit latency  {:.1} cycles", r.avg_flit_latency);
    println!("energy per packet {:.3} nJ", r.avg_packet_energy_nj);
    println!(
        "energy breakdown  xbar {:.1} uJ | link {:.1} uJ | buffer {:.1} uJ | nack {:.1} uJ",
        r.energy.crossbar_pj / 1e6,
        r.energy.link_pj / 1e6,
        r.energy.buffer_pj / 1e6,
        r.energy.nack_pj / 1e6
    );
    if r.deflections_per_packet > 0.0 {
        println!("deflections/pkt   {:.2}", r.deflections_per_packet);
    }
    if r.drops_per_packet > 0.0 {
        println!("drops/pkt         {:.2}", r.drops_per_packet);
    }
    if r.buffered_fraction > 0.0 {
        println!("buffered fraction {:.3}", r.buffered_fraction);
    }
    if let Some(fin) = r.finish_cycle {
        println!(
            "execution time    {fin} cycles (completed: {})",
            r.completed
        );
    }
}

fn main() {
    let args = parse_args();
    let mesh = Mesh::for_config(&args.cfg);
    let plan = if args.fault_pct > 0.0 {
        FaultPlan::generate(
            &mesh,
            args.fault_pct,
            args.cfg.warmup_cycles / 2,
            args.cfg.warmup_cycles.max(1),
            args.cfg.seed,
        )
    } else {
        FaultPlan::none(&mesh)
    };

    let (result, violated) = if args.verify {
        let outcome = if let Some(app) = args.splash {
            run_splash_verified(args.design, &args.cfg, app, 10_000_000)
        } else {
            run_synthetic_verified(args.design, &args.cfg, args.pattern, args.load, &plan)
        };
        match outcome {
            Ok((result, report)) => {
                eprintln!("verification: clean ({})", report.summary());
                (result, false)
            }
            Err(e) => {
                eprintln!("verification FAILED: {e}");
                (e.result, true)
            }
        }
    } else if let Some(app) = args.splash {
        (run_splash(args.design, &args.cfg, app, 10_000_000), false)
    } else {
        (
            run_synthetic_with_faults(args.design, &args.cfg, args.pattern, args.load, &plan),
            false,
        )
    };

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result).expect("serialize result")
        );
    } else {
        print_human(&result);
    }
    if violated {
        std::process::exit(1);
    }
}

//! Network builders for the evaluated configurations: the paper's six
//! micro-architectures (DXbar and the unified crossbar each under DOR and
//! West-First routing) plus the AFC extension.

use crate::kind::RouterKind;
use dxbar::{DXbarRouter, UnifiedRouter};
use noc_baseline::{AfcRouter, BlessRouter, BufferedRouter, BufferedVariant, ScarabRouter};
use noc_core::types::NodeId;
use noc_core::SimConfig;
use noc_faults::FaultPlan;
use noc_power::area::DesignKind;
use noc_power::energy::EnergyModel;
use noc_resilience::{ReachReport, ResiliencePlan};
use noc_routing::Algorithm;
use noc_sim::noc_trace::RecordingSink;
use noc_sim::runner::{run, run_traced, RunMode};
use noc_sim::{Network, RunResult};
use noc_topology::Mesh;
use noc_traffic::generator::SyntheticTraffic;
use noc_traffic::patterns::Pattern;
use noc_traffic::splash::{SplashApp, SplashTraffic};
use noc_zoo::{DamqRouter, MinBdRouter};
use serde::{Deserialize, Serialize};

/// One evaluated configuration: a router micro-architecture plus its
/// routing algorithm. Serializes as the variant name ("DXbarDor"), which
/// the campaign engine relies on for stable cache keys and spec files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    FlitBless,
    Scarab,
    Buffered4,
    Buffered8,
    DXbarDor,
    DXbarWf,
    UnifiedDor,
    UnifiedWf,
    /// Extension: simplified Adaptive Flow Control (the paper's ref. \[9\]).
    Afc,
    /// Extension: DAMQ shared-buffer router (arXiv:0910.1852).
    Damq,
    /// Extension: MinBD minimally-buffered deflection router
    /// (arXiv:2112.02516).
    MinBd,
}

impl Design {
    /// The six designs of the paper's main comparison (Figs. 5-10).
    pub const PAPER_SET: [Design; 6] = [
        Design::FlitBless,
        Design::Scarab,
        Design::Buffered4,
        Design::Buffered8,
        Design::DXbarDor,
        Design::DXbarWf,
    ];

    /// Every configuration this crate can build.
    pub const ALL: [Design; 11] = [
        Design::FlitBless,
        Design::Scarab,
        Design::Buffered4,
        Design::Buffered8,
        Design::DXbarDor,
        Design::DXbarWf,
        Design::UnifiedDor,
        Design::UnifiedWf,
        Design::Afc,
        Design::Damq,
        Design::MinBd,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Design::FlitBless => "Flit-Bless",
            Design::Scarab => "SCARAB",
            Design::Buffered4 => "Buffered 4",
            Design::Buffered8 => "Buffered 8",
            Design::DXbarDor => "DXbar DOR",
            Design::DXbarWf => "DXbar WF",
            Design::UnifiedDor => "Unified Xbar DOR",
            Design::UnifiedWf => "Unified Xbar WF",
            Design::Afc => "AFC",
            Design::Damq => "DAMQ",
            Design::MinBd => "MinBD",
        }
    }

    /// Area-model category of the design.
    pub fn area_kind(self) -> DesignKind {
        match self {
            Design::FlitBless => DesignKind::FlitBless,
            Design::Scarab => DesignKind::Scarab,
            Design::Buffered4 => DesignKind::Buffered4,
            Design::Buffered8 => DesignKind::Buffered8,
            Design::DXbarDor | Design::DXbarWf => DesignKind::DXbar,
            Design::UnifiedDor | Design::UnifiedWf => DesignKind::UnifiedXbar,
            // AFC carries Buffered-4-class storage plus mode logic.
            Design::Afc => DesignKind::Buffered4,
            Design::Damq => DesignKind::Damq,
            Design::MinBd => DesignKind::MinBd,
        }
    }

    /// Whether the design honours an injected [`FaultPlan`] (the paper's
    /// fault study covers the dual-crossbar design only).
    pub fn supports_faults(self) -> bool {
        matches!(self, Design::DXbarDor | Design::DXbarWf)
    }

    /// The routing algorithm a design variant uses (the paper evaluates
    /// DOR everywhere plus West-First on the two proposed designs).
    fn algorithm(self) -> Algorithm {
        match self {
            Design::DXbarWf | Design::UnifiedWf => Algorithm::WestFirst,
            _ => Algorithm::Dor,
        }
    }

    /// Build one router of this design for `node` (the factory behind
    /// [`Design::build`], exposed for micro-benchmarks).
    pub fn build_router(self, cfg: &SimConfig, faults: &FaultPlan, node: NodeId) -> RouterKind {
        let mesh = Mesh::for_config(cfg);
        let depth = cfg.buffer_depth;
        match self {
            Design::FlitBless => RouterKind::Bless(BlessRouter::new(node, mesh)),
            Design::Scarab => RouterKind::Scarab(ScarabRouter::new(node, mesh)),
            Design::Buffered4 => RouterKind::Buffered(BufferedRouter::new(
                node,
                mesh,
                BufferedVariant::Buffered4,
                Algorithm::Dor,
                depth,
            )),
            Design::Buffered8 => RouterKind::Buffered(BufferedRouter::new(
                node,
                mesh,
                BufferedVariant::Buffered8,
                Algorithm::Dor,
                depth,
            )),
            Design::DXbarDor | Design::DXbarWf => RouterKind::DXbar(DXbarRouter::new(
                node,
                mesh,
                self.algorithm(),
                depth,
                cfg.fairness_threshold,
                faults.fault_at(node),
                cfg.fault_detection_delay,
            )),
            Design::UnifiedDor | Design::UnifiedWf => RouterKind::Unified(UnifiedRouter::new(
                node,
                mesh,
                self.algorithm(),
                depth,
                cfg.fairness_threshold,
            )),
            Design::Afc => RouterKind::Afc(AfcRouter::new(node, mesh, depth)),
            Design::Damq => RouterKind::Damq(DamqRouter::new(node, mesh, depth)),
            Design::MinBd => RouterKind::MinBd(MinBdRouter::new(node, mesh, depth)),
        }
    }

    /// Build a network of this design. `faults` is honoured by the DXbar
    /// variants and ignored by the others (which the paper's fault study
    /// does not cover).
    ///
    /// The returned network dispatches its routers statically (see
    /// [`RouterKind`]); it accepts the same traffic models, observers and
    /// trace sinks as the dynamically dispatched default `Network`.
    pub fn build(self, cfg: &SimConfig, faults: &FaultPlan) -> Network<RouterKind> {
        Network::new(cfg, &|n| self.build_router(cfg, faults, n))
    }
}

/// The synthetic open-loop traffic source every facade below shares:
/// `offered_load` (fraction of capacity) converted through the config's
/// injection-rate model, with the config's packet length and seed.
fn synthetic_model(
    cfg: &SimConfig,
    mesh: Mesh,
    pattern: Pattern,
    offered_load: f64,
) -> SyntheticTraffic {
    SyntheticTraffic::new(
        pattern,
        mesh,
        cfg.injection_rate(offered_load),
        cfg.packet_len,
        cfg.seed,
    )
}

/// Closed-loop window override shared by the SPLASH facades: no warmup or
/// drain, measure until `max_cycles`.
fn closed_loop_cfg(cfg: &SimConfig, max_cycles: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 0,
        measure_cycles: max_cycles.max(1),
        drain_cycles: 0,
        ..cfg.clone()
    }
}

/// Run one open-loop synthetic experiment: `pattern` at `offered_load`
/// (fraction of network capacity).
pub fn run_synthetic(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
) -> RunResult {
    run_synthetic_with_faults(
        design,
        cfg,
        pattern,
        offered_load,
        &FaultPlan::none(&Mesh::for_config(cfg)),
    )
}

/// Like [`run_synthetic`] with a fault plan (Figs. 11/12).
pub fn run_synthetic_with_faults(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
    faults: &FaultPlan,
) -> RunResult {
    let mesh = Mesh::for_config(cfg);
    let mut net = design.build(cfg, faults);
    let mut model = synthetic_model(cfg, mesh, pattern, offered_load);
    let mut result = run(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
    );
    result.offered_load = Some(offered_load);
    result
}

/// Like [`run_synthetic`] with a recording trace sink attached: returns
/// the run result together with the recording (flit lifetimes, ring-
/// buffered events, per-cycle series).
pub fn run_synthetic_traced(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
    sink: RecordingSink,
) -> (RunResult, RecordingSink) {
    let mesh = Mesh::for_config(cfg);
    let mut net = design.build(cfg, &FaultPlan::none(&mesh));
    let mut model = synthetic_model(cfg, mesh, pattern, offered_load);
    let (mut result, sink) = run_traced(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
        sink,
    );
    result.offered_load = Some(offered_load);
    (result, sink)
}

/// Like [`run_synthetic_traced`] with the runtime-oracle suite attached as
/// well. The report comes back unconditionally so callers keep the trace
/// even when verification fails; check [`noc_verify::VerifyReport::is_clean`].
pub fn run_synthetic_traced_verified(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
    sink: RecordingSink,
) -> (RunResult, RecordingSink, noc_verify::VerifyReport) {
    let mesh = Mesh::for_config(cfg);
    let mut net = design.build(cfg, &FaultPlan::none(&mesh));
    let mut model = synthetic_model(cfg, mesh, pattern, offered_load);
    let (mut result, sink, report) = noc_verify::run_traced_verified(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
        sink,
    );
    result.offered_load = Some(offered_load);
    (result, sink, report)
}

/// Like [`run_synthetic_with_faults`] with the full runtime-oracle suite
/// attached (flit conservation, crossbar exclusivity, route legality, FIFO
/// bounds, fairness guarantee, deadlock/livelock watchdog). Returns the run
/// result together with the clean [`noc_verify::VerifyReport`], or the
/// structured [`noc_verify::VerifyError`] if any invariant was violated.
pub fn run_synthetic_verified(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
    faults: &FaultPlan,
) -> Result<(RunResult, noc_verify::VerifyReport), Box<noc_verify::VerifyError>> {
    let mesh = Mesh::for_config(cfg);
    let mut net = design.build(cfg, faults);
    let mut model = synthetic_model(cfg, mesh, pattern, offered_load);
    let (mut result, report) = noc_verify::run_verified(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
    )?;
    result.offered_load = Some(offered_load);
    Ok((result, report))
}

/// Run one open-loop synthetic experiment under a [`ResiliencePlan`]:
/// crossbar faults, permanent link faults, transient soft errors, and the
/// CRC + NI-retransmission recovery protocol. Returns the [`ReachReport`]
/// of the degraded topology alongside the run result — callers inspect it
/// for partitioned pairs (traffic between them burns the full retry budget
/// per packet and lands in `lost_flits`).
pub fn run_synthetic_resilient(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
    plan: &ResiliencePlan,
) -> (RunResult, ReachReport) {
    let mesh = Mesh::for_config(cfg);
    let reach = plan.reachability(&mesh);
    let mut net = design.build(cfg, &plan.crossbar);
    net.set_resilience(plan.clone());
    let mut model = synthetic_model(cfg, mesh, pattern, offered_load);
    let mut result = run(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
    );
    result.offered_load = Some(offered_load);
    (result, reach)
}

/// Like [`run_synthetic_resilient`] with the full runtime-oracle suite
/// attached, including the resilience oracles (every injected corruption
/// detected or counted lost; removed flits recovered or accounted).
#[allow(clippy::type_complexity)]
pub fn run_synthetic_resilient_verified(
    design: Design,
    cfg: &SimConfig,
    pattern: Pattern,
    offered_load: f64,
    plan: &ResiliencePlan,
) -> Result<(RunResult, ReachReport, noc_verify::VerifyReport), Box<noc_verify::VerifyError>> {
    let mesh = Mesh::for_config(cfg);
    let reach = plan.reachability(&mesh);
    let mut net = design.build(cfg, &plan.crossbar);
    net.set_resilience(plan.clone());
    let mut model = synthetic_model(cfg, mesh, pattern, offered_load);
    let (mut result, report) = noc_verify::run_verified(
        &mut net,
        &mut model,
        RunMode::OpenLoop,
        &EnergyModel::default(),
    )?;
    result.offered_load = Some(offered_load);
    Ok((result, reach, report))
}

/// Run one closed-loop SPLASH-2 workload to completion (Figs. 9/10).
/// `max_cycles` caps runaway runs (a design that cannot finish reports
/// `completed = false`).
pub fn run_splash(design: Design, cfg: &SimConfig, app: SplashApp, max_cycles: u64) -> RunResult {
    let mesh = Mesh::for_config(cfg);
    let cfg = closed_loop_cfg(cfg, max_cycles);
    let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = SplashTraffic::new(app, mesh, cfg.seed);
    run(
        &mut net,
        &mut model,
        RunMode::ClosedLoop { max_cycles },
        &EnergyModel::default(),
    )
}

/// Like [`run_splash`] with the runtime-oracle suite attached.
pub fn run_splash_verified(
    design: Design,
    cfg: &SimConfig,
    app: SplashApp,
    max_cycles: u64,
) -> Result<(RunResult, noc_verify::VerifyReport), Box<noc_verify::VerifyError>> {
    let mesh = Mesh::for_config(cfg);
    let cfg = closed_loop_cfg(cfg, max_cycles);
    let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = SplashTraffic::new(app, mesh, cfg.seed);
    noc_verify::run_verified(
        &mut net,
        &mut model,
        RunMode::ClosedLoop { max_cycles },
        &EnergyModel::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique_and_nonempty() {
        let mut names: Vec<&str> = Design::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Design::ALL.len());
    }

    #[test]
    fn paper_set_is_the_six_compared_designs() {
        assert_eq!(Design::PAPER_SET.len(), 6);
        assert!(!Design::PAPER_SET.contains(&Design::UnifiedDor));
    }

    #[test]
    fn fault_support_is_dxbar_only() {
        for d in Design::ALL {
            assert_eq!(
                d.supports_faults(),
                matches!(d, Design::DXbarDor | Design::DXbarWf)
            );
        }
    }

    #[test]
    fn every_design_builds_and_steps() {
        let cfg = SimConfig {
            width: 4,
            height: 4,
            warmup_cycles: 10,
            measure_cycles: 50,
            drain_cycles: 20,
            ..SimConfig::default()
        };
        for d in Design::ALL {
            let mesh = Mesh::new(4, 4);
            let mut net = d.build(&cfg, &FaultPlan::none(&mesh));
            assert_eq!(net.design_name(), d.name());
            let mut model = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.02, 1, 1);
            net.run_cycles(&mut model, 80);
            assert!(
                net.stats().events.ejections > 0,
                "{} delivered nothing",
                d.name()
            );
        }
    }
}

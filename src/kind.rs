//! Statically dispatched router union.
//!
//! The engine is generic over [`RouterModel`], and every design this crate
//! evaluates is known at compile time — so [`Design::build`](crate::Design::build)
//! produces a `Network<RouterKind>` rather than a `Network<Box<dyn
//! RouterModel>>`. The enum match compiles to a jump over inlined step
//! bodies (no vtable call, no per-router heap box), which matters because
//! `step` is *the* hot function: it runs once per node per cycle.
//!
//! External router implementations keep using the boxed form; the trait
//! object remains the engine's default type parameter.

use dxbar::{DXbarRouter, UnifiedRouter};
use noc_baseline::{AfcRouter, BlessRouter, BufferedRouter, ScarabRouter};
use noc_core::types::{NodeId, NUM_LINK_PORTS};
use noc_sim::router::{RouterModel, StepCtx};
use noc_zoo::{DamqRouter, MinBdRouter};

/// One of the evaluated router micro-architectures, dispatched statically.
#[allow(clippy::large_enum_variant)]
pub enum RouterKind {
    DXbar(DXbarRouter),
    Unified(UnifiedRouter),
    Buffered(BufferedRouter),
    Bless(BlessRouter),
    Scarab(ScarabRouter),
    Afc(AfcRouter),
    Damq(DamqRouter),
    MinBd(MinBdRouter),
}

macro_rules! dispatch {
    ($self:ident, $r:ident => $body:expr) => {
        match $self {
            RouterKind::DXbar($r) => $body,
            RouterKind::Unified($r) => $body,
            RouterKind::Buffered($r) => $body,
            RouterKind::Bless($r) => $body,
            RouterKind::Scarab($r) => $body,
            RouterKind::Afc($r) => $body,
            RouterKind::Damq($r) => $body,
            RouterKind::MinBd($r) => $body,
        }
    };
}

impl RouterModel for RouterKind {
    #[inline]
    fn node(&self) -> NodeId {
        dispatch!(self, r => r.node())
    }

    #[inline]
    fn step(&mut self, ctx: &mut StepCtx) {
        dispatch!(self, r => r.step(ctx))
    }

    #[inline]
    fn is_idle(&self) -> bool {
        dispatch!(self, r => r.is_idle())
    }

    #[inline]
    fn occupancy(&self) -> usize {
        dispatch!(self, r => r.occupancy())
    }

    #[inline]
    fn design_name(&self) -> &'static str {
        dispatch!(self, r => r.design_name())
    }

    #[inline]
    fn set_faulty_links(&mut self, down: [bool; NUM_LINK_PORTS]) {
        dispatch!(self, r => r.set_faulty_links(down))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Design;
    use noc_core::SimConfig;
    use noc_faults::FaultPlan;
    use noc_topology::Mesh;

    #[test]
    fn dispatch_matches_inner_router() {
        let cfg = SimConfig {
            width: 4,
            height: 4,
            ..SimConfig::default()
        };
        let mesh = Mesh::new(4, 4);
        for d in Design::ALL {
            let net = d.build(&cfg, &FaultPlan::none(&mesh));
            assert_eq!(net.design_name(), d.name(), "{d:?}");
        }
    }

    #[test]
    fn faulty_link_passthrough_does_not_panic() {
        let mesh = Mesh::new(4, 4);
        let mut r = RouterKind::Bless(BlessRouter::new(NodeId(0), mesh));
        r.set_faulty_links([false; NUM_LINK_PORTS]);
        assert_eq!(r.occupancy(), 0);
        assert!(r.is_idle());
    }
}

//! # dxbar-noc
//!
//! A full reproduction of *"Energy-Efficient and Fault-Tolerant Unified
//! Buffer and Bufferless Crossbar Architecture for NoCs"* (Zhang, Morris,
//! DiTomaso, Kodi — IPDPS Workshops 2012): a cycle-accurate NoC simulator,
//! the DXbar dual-crossbar and unified dual-input crossbar routers, the
//! paper's four comparison designs, its energy/area models, its traffic
//! patterns and SPLASH-2 workload model, and its fault-injection framework.
//!
//! ## Quick start
//!
//! ```
//! use dxbar_noc::{Design, SimConfig, run_synthetic};
//! use dxbar_noc::noc_traffic::patterns::Pattern;
//!
//! let cfg = SimConfig {
//!     warmup_cycles: 500,
//!     measure_cycles: 1_000,
//!     drain_cycles: 500,
//!     ..SimConfig::default()
//! };
//! // Offered load = 0.3 of network capacity, uniform random traffic.
//! let result = run_synthetic(Design::DXbarDor, &cfg, Pattern::UniformRandom, 0.3);
//! assert!(result.accepted_fraction > 0.2);
//! ```
//!
//! See `examples/` for larger scenarios and `crates/bench` for the
//! regenerators of every table and figure in the paper.

pub mod designs;
pub mod kind;

pub use designs::{
    run_splash, run_splash_verified, run_synthetic, run_synthetic_resilient,
    run_synthetic_resilient_verified, run_synthetic_traced, run_synthetic_traced_verified,
    run_synthetic_verified, run_synthetic_with_faults, Design,
};
pub use kind::RouterKind;
pub use noc_core::SimConfig;
pub use noc_sim::{Network, RunResult};

// Re-export the component crates under stable names.
pub use dxbar;
pub use noc_baseline;
pub use noc_core;
pub use noc_faults;
pub use noc_power;
pub use noc_resilience;
pub use noc_routing;
pub use noc_sim;
pub use noc_topology;
pub use noc_traffic;
pub use noc_verify;
pub use noc_zoo;

//! Allocation regression pin for the full DXbar stack.
//!
//! Same harness as `noc-sim/tests/zero_alloc.rs`, but over the real
//! statically-dispatched DXbar router: a warmed-up 8x8 uniform-random run
//! with tracing, verification and resilience disabled must execute 1 000
//! steady-state cycles with **zero** heap allocations — engine and router
//! together. A new allocation anywhere on the per-cycle path (engine
//! scratch, pool growth, router-internal collections) turns this red.

use dxbar_noc::{Design, SimConfig};
use noc_faults::FaultPlan;
use noc_topology::Mesh;
use noc_traffic::generator::SyntheticTraffic;
use noc_traffic::patterns::Pattern;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn dxbar_steady_state_cycles_do_not_allocate() {
    let cfg = SimConfig {
        width: 8,
        height: 8,
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 2, // whole run in-window: stats paths hot
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(8, 8);
    let mut net = Design::DXbarDor.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.1, 1, 42);

    // Warmup: reach the pool/queue/stats high-water marks.
    net.run_cycles(&mut model, 20_000);

    COUNTING.store(true, Ordering::SeqCst);
    net.run_cycles(&mut model, 1_000);
    COUNTING.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert!(
        net.stats().accepted_flits > 0,
        "run must actually move traffic"
    );
    assert_eq!(
        allocs, 0,
        "DXbar run allocated {allocs} times across 1000 steady-state cycles"
    );
}

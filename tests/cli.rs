//! End-to-end tests of the `dxbar-sim` command-line interface.

use std::process::Command;

fn dxbar_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dxbar-sim"))
}

#[test]
fn synthetic_run_prints_summary() {
    let out = dxbar_sim()
        .args([
            "--design",
            "dxbar-dor",
            "--pattern",
            "UR",
            "--load",
            "0.2",
            "--mesh",
            "4x4",
            "--warmup",
            "200",
            "--cycles",
            "800",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DXbar DOR"));
    assert!(text.contains("accepted load"));
    assert!(text.contains("energy per packet"));
}

#[test]
fn json_output_is_parseable() {
    let out = dxbar_sim()
        .args([
            "--design", "bless", "--load", "0.1", "--mesh", "4x4", "--warmup", "100", "--cycles",
            "400", "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("stdout must be valid JSON");
    assert_eq!(v["design"], "Flit-Bless");
    assert!(v["accepted_fraction"].as_f64().unwrap() > 0.05);
}

#[test]
fn faults_on_unsupported_design_is_an_error() {
    let out = dxbar_sim()
        .args(["--design", "bless", "--faults", "50"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("only meaningful for dxbar"), "stderr: {err}");
}

#[test]
fn unknown_flag_fails_with_help() {
    let out = dxbar_sim().args(["--bogus"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_pattern_exits_2_and_lists_patterns() {
    let out = dxbar_sim()
        .args(["--pattern", "ZZZ"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown pattern"), "stderr: {err}");
    assert!(err.contains("known patterns:"), "stderr: {err}");
    for abbrev in ["UR", "NUR", "MT", "TOR"] {
        assert!(err.contains(abbrev), "abbrev {abbrev} missing from: {err}");
    }
}

#[test]
fn unknown_design_exits_2_and_lists_designs() {
    let out = dxbar_sim()
        .args(["--design", "no-such-router"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown design"), "stderr: {err}");
    assert!(err.contains("known designs:"), "stderr: {err}");
    for name in ["flit-bless", "damq", "minbd"] {
        assert!(err.contains(name), "design {name} missing from: {err}");
    }
}

#[test]
fn list_enumerates_everything() {
    let out = dxbar_sim().args(["--list"]).output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["dxbar-dor", "unified-wf", "UR", "TOR", "ocean", "barnes"] {
        assert!(text.contains(needle), "missing {needle} in --list");
    }
}

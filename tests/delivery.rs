//! End-to-end delivery guarantees: every design must deliver every packet
//! of a finite workload — no loss, no duplication — and drain completely.

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_power::energy::EnergyModel;
use dxbar_noc::noc_sim::runner::{run, RunMode};
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::generator::SyntheticTraffic;
use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::noc_traffic::trace::{Trace, TraceReplay};
use dxbar_noc::{Design, SimConfig};

fn capture_trace(
    pattern: Pattern,
    mesh: Mesh,
    rate: f64,
    len: u8,
    cycles: u64,
    seed: u64,
) -> Trace {
    let mut model = SyntheticTraffic::new(pattern, mesh, rate, len, seed);
    Trace::capture(&mut model, cycles)
}

fn closed_loop_cfg(width: u16, height: u16) -> SimConfig {
    SimConfig {
        width,
        height,
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    }
}

fn assert_delivers_all(design: Design, pattern: Pattern, rate: f64, packet_len: u8, seed: u64) {
    let cfg = closed_loop_cfg(6, 6);
    let mesh = Mesh::new(cfg.width, cfg.height);
    let trace = capture_trace(pattern, mesh, rate, packet_len, 300, seed);
    let flits: u64 = trace.packets.iter().map(|p| p.len as u64).sum();
    let packets = trace.len() as u64;
    assert!(packets > 50, "trace too small to be meaningful");

    let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = TraceReplay::new(trace);
    let res = run(
        &mut net,
        &mut model,
        RunMode::ClosedLoop {
            max_cycles: 500_000,
        },
        &EnergyModel::default(),
    );

    assert!(res.completed, "{}: network never drained", design.name());
    assert_eq!(
        res.stats.events.ejections,
        flits,
        "{}: flits lost or duplicated",
        design.name()
    );
    assert_eq!(
        res.accepted_packets,
        packets,
        "{}: packets lost",
        design.name()
    );
    assert_eq!(
        net.reassembly_duplicates(),
        0,
        "{}: duplicate flits",
        design.name()
    );
    assert!(net.is_quiescent());
}

#[test]
fn all_designs_deliver_uniform_random() {
    for design in Design::ALL {
        assert_delivers_all(design, Pattern::UniformRandom, 0.15, 1, 42);
    }
}

#[test]
fn all_designs_deliver_adverse_tornado() {
    for design in Design::ALL {
        assert_delivers_all(design, Pattern::Tornado, 0.2, 1, 7);
    }
}

#[test]
fn all_designs_deliver_multiflit_packets() {
    // 4-flit packets with every-flit-head routing: out-of-order arrival must
    // still reassemble exactly once. (Transpose works on the 6x6 mesh;
    // bit-complement would need a power-of-two node count.)
    for design in Design::ALL {
        assert_delivers_all(design, Pattern::MatrixTranspose, 0.05, 4, 9);
    }
}

#[test]
fn dxbar_delivers_under_heavy_transpose() {
    // Transpose concentrates traffic on the diagonal; run hotter.
    assert_delivers_all(Design::DXbarDor, Pattern::MatrixTranspose, 0.5, 1, 3);
    assert_delivers_all(Design::DXbarWf, Pattern::MatrixTranspose, 0.5, 1, 3);
}

#[test]
fn scarab_retransmissions_preserve_exactly_once_delivery() {
    // High load forces drops; the NACK/retransmit path must not duplicate.
    let cfg = closed_loop_cfg(6, 6);
    let mesh = Mesh::new(cfg.width, cfg.height);
    let trace = capture_trace(Pattern::UniformRandom, mesh, 0.5, 1, 200, 5);
    let packets = trace.len() as u64;
    let mut net = Design::Scarab.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = TraceReplay::new(trace);
    let res = run(
        &mut net,
        &mut model,
        RunMode::ClosedLoop {
            max_cycles: 500_000,
        },
        &EnergyModel::default(),
    );
    assert!(res.completed);
    assert!(res.stats.events.drops > 0, "load too low to exercise drops");
    assert_eq!(res.accepted_packets, packets);
    assert_eq!(net.reassembly_duplicates(), 0);
}

#[test]
fn bless_deflections_preserve_delivery() {
    let cfg = closed_loop_cfg(6, 6);
    let mesh = Mesh::new(cfg.width, cfg.height);
    let trace = capture_trace(Pattern::UniformRandom, mesh, 0.5, 1, 200, 6);
    let packets = trace.len() as u64;
    let mut net = Design::FlitBless.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = TraceReplay::new(trace);
    let res = run(
        &mut net,
        &mut model,
        RunMode::ClosedLoop {
            max_cycles: 500_000,
        },
        &EnergyModel::default(),
    );
    assert!(res.completed);
    assert!(
        res.stats.events.deflections > 0,
        "load too low to exercise deflection"
    );
    assert_eq!(res.accepted_packets, packets);
}

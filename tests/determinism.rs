//! Bit-exact reproducibility: the same seed must give the same run, and
//! results must not depend on when/where the run executes (the property
//! that makes rayon-parallel sweeps safe).

use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic, Design, SimConfig};

fn cfg() -> SimConfig {
    SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 300,
        measure_cycles: 800,
        drain_cycles: 400,
        ..SimConfig::default()
    }
}

fn fingerprint(design: Design, seed: u64) -> (u64, u64, u64, u64, u64) {
    let c = SimConfig { seed, ..cfg() };
    let r = run_synthetic(design, &c, Pattern::UniformRandom, 0.25);
    (
        r.accepted_packets,
        r.stats.events.link_traversals,
        r.stats.events.buffer_writes,
        r.stats.events.deflections,
        r.avg_packet_latency.to_bits(),
    )
}

#[test]
fn same_seed_same_run_every_design() {
    for design in Design::ALL {
        assert_eq!(
            fingerprint(design, 11),
            fingerprint(design, 11),
            "{} not deterministic",
            design.name()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(Design::DXbarDor, 1);
    let b = fingerprint(Design::DXbarDor, 2);
    assert_ne!(a, b, "different seeds should explore different traffic");
}

#[test]
fn parallel_sweep_matches_sequential() {
    use rayon::prelude::*;
    let seeds: Vec<u64> = (0..6).collect();
    let sequential: Vec<_> = seeds
        .iter()
        .map(|&s| fingerprint(Design::DXbarDor, s))
        .collect();
    let parallel: Vec<_> = seeds
        .par_iter()
        .map(|&s| fingerprint(Design::DXbarDor, s))
        .collect();
    assert_eq!(sequential, parallel);
}

//! The fairness mechanism (Section II-A-2): without the priority-flip
//! counter, age-based arbitration lets edge-injected flits starve the
//! centre nodes' injection ports at high load. These tests measure the
//! per-source latency spread with the paper's threshold (4) against a
//! practically disabled counter.

use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic, Design, RunResult, SimConfig};

fn run_with_threshold(threshold: u32) -> RunResult {
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        drain_cycles: 2_000,
        fairness_threshold: threshold,
        ..SimConfig::default()
    };
    // Past saturation: this is where starvation appears.
    run_synthetic(Design::DXbarDor, &cfg, Pattern::UniformRandom, 0.6)
}

#[test]
fn fairness_counter_bounds_source_starvation() {
    // Note: with bounded source queues the starvation effect is partially
    // absorbed at the sources, so the measurable gap is moderate — but it
    // must exist, in both worst-node latency and spread.
    let fair = run_with_threshold(4);
    let unfair = run_with_threshold(1_000_000);
    assert!(
        unfair.max_source_latency > 1.05 * fair.max_source_latency,
        "disabling fairness should starve someone: fair {:.0}, unfair {:.0}",
        fair.max_source_latency,
        unfair.max_source_latency
    );
    assert!(
        unfair.latency_spread > fair.latency_spread,
        "spread fair {:.1} vs unfair {:.1}",
        fair.latency_spread,
        unfair.latency_spread
    );
}

#[test]
fn fairness_does_not_cost_throughput() {
    // The paper tuned threshold = 4 as the best performance point; the flip
    // must not tank saturation throughput relative to no fairness at all.
    let fair = run_with_threshold(4);
    let unfair = run_with_threshold(1_000_000);
    assert!(
        fair.accepted_fraction > 0.9 * unfair.accepted_fraction,
        "fairness cost too much throughput: {:.3} vs {:.3}",
        fair.accepted_fraction,
        unfair.accepted_fraction
    );
}

#[test]
fn threshold_choice_is_a_mild_knob() {
    // The paper tuned the threshold to 4; in our implementation the flip is
    // cheap enough that throughput is insensitive across 1..16 (within a
    // few percent) — the knob trades fairness, not bandwidth. The ablations
    // binary sweeps this at full scale.
    let t1 = run_with_threshold(1);
    let t4 = run_with_threshold(4);
    let t16 = run_with_threshold(16);
    for (label, r) in [("1", &t1), ("16", &t16)] {
        let ratio = r.accepted_fraction / t4.accepted_fraction;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "threshold {label}: throughput ratio {ratio:.3} vs threshold 4"
        );
    }
    // But fairness improves monotonically with smaller thresholds.
    assert!(
        t1.max_source_latency <= t16.max_source_latency * 1.05,
        "t1 worst-node {:.0} vs t16 {:.0}",
        t1.max_source_latency,
        t16.max_source_latency
    );
}

//! Fault-tolerance integration: DXbar must keep delivering every packet
//! even when every router has a broken crossbar, and the degradation shape
//! must match Section III-E (DOR graceful, WF worse, power up).

use dxbar_noc::noc_faults::{CrossbarId, FaultPlan};
use dxbar_noc::noc_power::energy::EnergyModel;
use dxbar_noc::noc_sim::runner::{run, RunMode};
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::generator::SyntheticTraffic;
use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::noc_traffic::trace::{Trace, TraceReplay};
use dxbar_noc::{run_synthetic_with_faults, Design, SimConfig};

#[test]
fn full_fault_coverage_still_delivers_everything() {
    // 100 % faults = one crossbar broken in every router; faults manifest
    // at cycle 50, mid-traffic, so the undetected window is exercised too.
    let cfg = SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    for design in [Design::DXbarDor, Design::DXbarWf] {
        let plan = FaultPlan::generate(&mesh, 1.0, 50, 60, 123);
        assert_eq!(plan.count(), 16);
        let mut model = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.1, 1, 9);
        let trace = Trace::capture(&mut model, 400);
        let packets = trace.len() as u64;
        let mut net = design.build(&cfg, &plan);
        let mut replay = TraceReplay::new(trace);
        let res = run(
            &mut net,
            &mut replay,
            RunMode::ClosedLoop {
                max_cycles: 200_000,
            },
            &EnergyModel::default(),
        );
        assert!(res.completed, "{}: drained with 100% faults", design.name());
        assert_eq!(
            res.accepted_packets,
            packets,
            "{}: packet loss",
            design.name()
        );
    }
}

#[test]
fn primary_only_and_secondary_only_fault_plans_deliver() {
    // Force every fault onto one specific crossbar type by regenerating
    // until the plan matches (seeded search keeps this deterministic).
    let cfg = SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    for target in [CrossbarId::Primary, CrossbarId::Secondary] {
        // Hand-made plan: the same crossbar broken in every router.
        let plan = FaultPlan::from_faults(
            &mesh,
            mesh.nodes()
                .map(|router| dxbar_noc::noc_faults::RouterFault {
                    router,
                    target,
                    onset: 10,
                }),
        );
        let mut model = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.05, 1, 4);
        let trace = Trace::capture(&mut model, 200);
        let packets = trace.len() as u64;
        let mut net = Design::DXbarDor.build(&cfg, &plan);
        let mut replay = TraceReplay::new(trace);
        let res = run(
            &mut net,
            &mut replay,
            RunMode::ClosedLoop {
                max_cycles: 200_000,
            },
            &EnergyModel::default(),
        );
        assert!(res.completed, "{target:?} faults: drained");
        assert_eq!(res.accepted_packets, packets, "{target:?} faults: loss");
    }
}

#[test]
fn dor_degrades_gracefully_wf_suffers_more() {
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    let load = 0.35;
    let healthy = FaultPlan::none(&mesh);
    let faulty = FaultPlan::generate(
        &mesh,
        1.0,
        cfg.warmup_cycles / 2,
        cfg.warmup_cycles,
        cfg.seed,
    );

    let dor_ok = run_synthetic_with_faults(
        Design::DXbarDor,
        &cfg,
        Pattern::UniformRandom,
        load,
        &healthy,
    );
    let dor_bad = run_synthetic_with_faults(
        Design::DXbarDor,
        &cfg,
        Pattern::UniformRandom,
        load,
        &faulty,
    );
    let wf_ok = run_synthetic_with_faults(
        Design::DXbarWf,
        &cfg,
        Pattern::UniformRandom,
        load,
        &healthy,
    );
    let wf_bad =
        run_synthetic_with_faults(Design::DXbarWf, &cfg, Pattern::UniformRandom, load, &faulty);

    let dor_drop = 1.0 - dor_bad.accepted_fraction / dor_ok.accepted_fraction;
    let wf_drop = 1.0 - wf_bad.accepted_fraction / wf_ok.accepted_fraction;
    // Paper Fig. 11: DOR degradation < 10 %, WF up to ~33 %.
    assert!(dor_drop < 0.10, "DOR dropped {dor_drop:.2}");
    assert!(
        wf_drop > dor_drop,
        "WF ({wf_drop:.2}) should suffer more than DOR ({dor_drop:.2})"
    );

    // Paper Fig. 12: power rises with faults (more buffered traversals).
    assert!(
        dor_bad.avg_packet_energy_nj > dor_ok.avg_packet_energy_nj,
        "faulty energy {} <= healthy {}",
        dor_bad.avg_packet_energy_nj,
        dor_ok.avg_packet_energy_nj
    );
    assert!(
        dor_bad.buffered_fraction > dor_ok.buffered_fraction,
        "faults must push more flits through the buffers"
    );
}

#[test]
fn fault_free_plan_changes_nothing() {
    let cfg = SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 200,
        measure_cycles: 600,
        drain_cycles: 300,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    let a = run_synthetic_with_faults(
        Design::DXbarDor,
        &cfg,
        Pattern::UniformRandom,
        0.2,
        &FaultPlan::none(&mesh),
    );
    let b = run_synthetic_with_faults(
        Design::DXbarDor,
        &cfg,
        Pattern::UniformRandom,
        0.2,
        &FaultPlan::generate(&mesh, 0.0, 0, 1, 99),
    );
    assert_eq!(a.accepted_packets, b.accepted_packets);
    assert_eq!(
        a.stats.events.link_traversals,
        b.stats.events.link_traversals
    );
}

//! The paper's headline claims, asserted as integration tests (scaled-down
//! runs of the Fig. 5/6 experiments; the full-size regenerators live in
//! `crates/bench`).

use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::{run_synthetic, Design, RunResult, SimConfig};

fn cfg() -> SimConfig {
    SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 3_000,
        drain_cycles: 1_500,
        ..SimConfig::default()
    }
}

fn at(design: Design, load: f64) -> RunResult {
    run_synthetic(design, &cfg(), Pattern::UniformRandom, load)
}

/// Saturation throughput: run well past every design's saturation point and
/// compare accepted load.
fn saturation(design: Design) -> f64 {
    at(design, 0.6).accepted_fraction
}

#[test]
fn dxbar_dor_has_highest_saturation_throughput() {
    let dxbar = saturation(Design::DXbarDor);
    // Paper: saturation over 0.4 of capacity.
    assert!(dxbar > 0.38, "DXbar DOR saturation {dxbar}");
    // "40% improvement over buffered 4, Flit-Bless, and SCARAB."
    for rival in [Design::Buffered4, Design::FlitBless, Design::Scarab] {
        let r = saturation(rival);
        assert!(
            dxbar > 1.25 * r,
            "DXbar {dxbar:.3} should clearly beat {} {r:.3}",
            rival.name()
        );
    }
    // "20% improvement over buffered 8" — our idealized Buffered-8 baseline
    // narrows this (see EXPERIMENTS.md), but DXbar must stay ahead.
    let b8 = saturation(Design::Buffered8);
    assert!(dxbar > b8 * 1.02, "DXbar {dxbar:.3} vs Buffered 8 {b8:.3}");
}

#[test]
fn bufferless_designs_saturate_below_dxbar_wf() {
    let wf = saturation(Design::DXbarWf);
    let bless = saturation(Design::FlitBless);
    let scarab = saturation(Design::Scarab);
    // Paper: Flit-Bless and SCARAB saturate below 0.3; DXbar WF above both.
    assert!(bless < 0.32, "BLESS saturation {bless}");
    assert!(scarab < 0.32, "SCARAB saturation {scarab}");
    assert!(
        wf > bless && wf > scarab,
        "WF {wf} must beat bufferless designs"
    );
}

#[test]
fn unified_matches_dual_crossbar_performance() {
    // "A unified crossbar design that achieves identical functionality" —
    // throughput within a few percent of the dual-crossbar design.
    let dual = saturation(Design::DXbarDor);
    let unified = saturation(Design::UnifiedDor);
    let ratio = unified / dual;
    assert!((0.95..=1.05).contains(&ratio), "unified/dual = {ratio:.3}");
}

#[test]
fn dxbar_energy_stays_flat_with_load() {
    // Paper: "the energy consumption for DXbar hardly changes when the
    // offered network load increases".
    let low = at(Design::DXbarDor, 0.1).avg_packet_energy_nj;
    let high = at(Design::DXbarDor, 0.6).avg_packet_energy_nj;
    assert!(high < 1.25 * low, "DXbar energy rose {low:.3} -> {high:.3}");
}

#[test]
fn bufferless_energy_blows_up_past_saturation() {
    // Paper: Flit-Bless ~3X, SCARAB ~2X near/after saturation.
    let bless_low = at(Design::FlitBless, 0.1).avg_packet_energy_nj;
    let bless_high = at(Design::FlitBless, 0.6).avg_packet_energy_nj;
    assert!(
        bless_high > 1.6 * bless_low,
        "BLESS energy {bless_low:.3} -> {bless_high:.3}"
    );
    let scarab_low = at(Design::Scarab, 0.1).avg_packet_energy_nj;
    let scarab_high = at(Design::Scarab, 0.6).avg_packet_energy_nj;
    assert!(
        scarab_high > 1.3 * scarab_low,
        "SCARAB energy {scarab_low:.3} -> {scarab_high:.3}"
    );
    // And both exceed DXbar at high load.
    let dxbar_high = at(Design::DXbarDor, 0.6).avg_packet_energy_nj;
    assert!(bless_high > 1.5 * dxbar_high);
    assert!(scarab_high > 1.2 * dxbar_high);
}

#[test]
fn dxbar_saves_at_least_15_percent_energy_over_buffered() {
    for load in [0.2, 0.4] {
        let dxbar = at(Design::DXbarDor, load).avg_packet_energy_nj;
        let b4 = at(Design::Buffered4, load).avg_packet_energy_nj;
        let b8 = at(Design::Buffered8, load).avg_packet_energy_nj;
        assert!(
            dxbar < 0.85 * b4,
            "load {load}: DXbar {dxbar:.3} vs B4 {b4:.3}"
        );
        assert!(
            dxbar < 0.85 * b8,
            "load {load}: DXbar {dxbar:.3} vs B8 {b8:.3}"
        );
    }
}

#[test]
fn dxbar_zero_load_latency_matches_bufferless_pipeline() {
    // 2-stage pipeline: DXbar latency at low load must track Flit-BLESS and
    // clearly undercut the 3-stage buffered baseline.
    let dxbar = at(Design::DXbarDor, 0.05).avg_packet_latency;
    let bless = at(Design::FlitBless, 0.05).avg_packet_latency;
    let buffered = at(Design::Buffered4, 0.05).avg_packet_latency;
    assert!(
        (dxbar - bless).abs() < 2.0,
        "DXbar {dxbar:.1} vs BLESS {bless:.1}"
    );
    assert!(
        buffered > 1.3 * dxbar,
        "Buffered {buffered:.1} vs DXbar {dxbar:.1}"
    );
}

#[test]
fn only_a_fraction_of_flits_buffer_after_saturation() {
    // Paper: "the chance for the packets to be buffered while traversing
    // through a router is only 1/6 after saturation point".
    let r = at(Design::DXbarDor, 0.6);
    assert!(
        r.buffered_fraction > 0.02 && r.buffered_fraction < 0.40,
        "buffered fraction {:.3}",
        r.buffered_fraction
    );
    // And essentially nothing buffers at low load (bufferless behaviour).
    let low = at(Design::DXbarDor, 0.1);
    assert!(
        low.buffered_fraction < 0.05,
        "low-load buffering {:.3}",
        low.buffered_fraction
    );
}

#[test]
fn dxbar_never_deflects_or_drops() {
    let r = at(Design::DXbarDor, 0.6);
    assert_eq!(r.stats.events.deflections, 0);
    assert_eq!(r.stats.events.drops, 0);
}

#[test]
fn wf_beats_dor_on_adaptive_friendly_patterns() {
    // Paper Fig. 7: "For BR, BT, MT, and PS, which all favor adaptive
    // routing algorithms, DXbar WF is very competitive" — the adaptivity
    // must pay off against deterministic DOR on those patterns.
    let c = cfg();
    for pattern in [
        Pattern::MatrixTranspose,
        Pattern::BitReversal,
        Pattern::PerfectShuffle,
        Pattern::Butterfly,
    ] {
        let wf = run_synthetic(Design::DXbarWf, &c, pattern, 0.35).accepted_fraction;
        let dor = run_synthetic(Design::DXbarDor, &c, pattern, 0.35).accepted_fraction;
        assert!(
            wf > dor,
            "{}: WF {wf:.3} should beat DOR {dor:.3}",
            pattern.abbrev()
        );
    }
}

#[test]
fn dor_wins_on_uniform_and_tornado() {
    // Paper Fig. 7: "for UR, NUR, CP, and TOR, DXbar DOR performs the best".
    let c = cfg();
    for pattern in [
        Pattern::UniformRandom,
        Pattern::Tornado,
        Pattern::Complement,
    ] {
        let wf = run_synthetic(Design::DXbarWf, &c, pattern, 0.35).accepted_fraction;
        let dor = run_synthetic(Design::DXbarDor, &c, pattern, 0.35).accepted_fraction;
        assert!(
            dor >= wf * 0.99,
            "{}: DOR {dor:.3} should not lose to WF {wf:.3}",
            pattern.abbrev()
        );
    }
}

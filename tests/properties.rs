//! Network-level property tests: for random meshes, loads, seeds and
//! designs, the invariants that define a correct interconnect must hold —
//! every packet is delivered exactly once, flits are conserved, energy
//! accounting is additive, and runs are reproducible.

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_power::energy::EnergyModel;
use dxbar_noc::noc_sim::runner::{run, RunMode};
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::generator::SyntheticTraffic;
use dxbar_noc::noc_traffic::patterns::Pattern;
use dxbar_noc::noc_traffic::trace::{Trace, TraceReplay};
use dxbar_noc::{Design, SimConfig};
use proptest::prelude::*;

fn any_design() -> impl Strategy<Value = Design> {
    prop::sample::select(Design::ALL.to_vec())
}

fn any_pattern() -> impl Strategy<Value = Pattern> {
    // Patterns valid on non-power-of-two meshes.
    prop::sample::select(vec![
        Pattern::UniformRandom,
        Pattern::NonUniformRandom,
        Pattern::MatrixTranspose,
        Pattern::Neighbor,
        Pattern::Tornado,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Exactly-once delivery for any design, pattern, load, mesh and seed.
    #[test]
    fn prop_exactly_once_delivery(
        design in any_design(),
        pattern in any_pattern(),
        rate in 0.02f64..0.35,
        dims in (3u16..6, 3u16..6),
        packet_len in 1u8..5,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            width: dims.0,
            height: dims.1,
            warmup_cycles: 0,
            measure_cycles: u64::MAX / 4,
            drain_cycles: 0,
            ..SimConfig::default()
        };
        let mesh = Mesh::new(cfg.width, cfg.height);
        let mut gen = SyntheticTraffic::new(pattern, mesh, rate, packet_len, seed);
        let trace = Trace::capture(&mut gen, 150);
        let flits: u64 = trace.packets.iter().map(|p| p.len as u64).sum();
        let packets = trace.len() as u64;
        prop_assume!(packets > 0);

        let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
        let mut model = TraceReplay::new(trace);
        let res = run(
            &mut net,
            &mut model,
            RunMode::ClosedLoop { max_cycles: 300_000 },
            &EnergyModel::default(),
        );
        prop_assert!(res.completed, "{} never drained", design.name());
        prop_assert_eq!(res.stats.events.ejections, flits, "flit loss/duplication");
        prop_assert_eq!(res.accepted_packets, packets, "packet loss");
        prop_assert_eq!(net.reassembly_duplicates(), 0);
        // Conservation: every injected flit either ejected or was dropped
        // (and each drop triggered exactly one retransmission, which is a
        // fresh injection).
        prop_assert_eq!(
            res.stats.events.injections,
            res.stats.events.ejections + res.stats.events.drops
        );
        prop_assert_eq!(res.stats.events.retransmissions, res.stats.events.drops);
    }

    /// DXbar delivers exactly once under any fault plan.
    #[test]
    fn prop_dxbar_exactly_once_under_faults(
        fraction in 0.0f64..=1.0,
        onset in 1u64..200,
        wf in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            width: 4,
            height: 4,
            warmup_cycles: 0,
            measure_cycles: u64::MAX / 4,
            drain_cycles: 0,
            ..SimConfig::default()
        };
        let mesh = Mesh::new(4, 4);
        let design = if wf { Design::DXbarWf } else { Design::DXbarDor };
        let plan = FaultPlan::generate(&mesh, fraction, onset, onset + 50, seed);
        let mut gen = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.1, 1, seed);
        let trace = Trace::capture(&mut gen, 200);
        let packets = trace.len() as u64;
        prop_assume!(packets > 0);
        let mut net = design.build(&cfg, &plan);
        let mut model = TraceReplay::new(trace);
        let res = run(
            &mut net,
            &mut model,
            RunMode::ClosedLoop { max_cycles: 300_000 },
            &EnergyModel::default(),
        );
        prop_assert!(res.completed, "{} stuck under faults", design.name());
        prop_assert_eq!(res.accepted_packets, packets);
    }

    /// Hop counts at ejection are at least the Manhattan distance (equality
    /// for the minimal designs; BLESS may exceed via deflection).
    #[test]
    fn prop_minimal_designs_route_minimally(
        design in prop::sample::select(vec![
            Design::DXbarDor, Design::DXbarWf, Design::UnifiedDor,
            Design::Buffered4, Design::Buffered8,
        ]),
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig {
            width: 4,
            height: 4,
            warmup_cycles: 0,
            measure_cycles: u64::MAX / 4,
            drain_cycles: 0,
            ..SimConfig::default()
        };
        let mesh = Mesh::new(4, 4);
        let mut gen = SyntheticTraffic::new(Pattern::UniformRandom, mesh, 0.1, 1, seed);
        let trace = Trace::capture(&mut gen, 100);
        prop_assume!(!trace.is_empty());
        // Average distance bound: every flit travels exactly its Manhattan
        // distance in a minimal design, so total link traversals must equal
        // the sum of distances.
        let total_distance: u64 = trace
            .packets
            .iter()
            .map(|p| mesh.hop_distance(p.src, p.dst) as u64 * p.len as u64)
            .sum();
        let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
        let mut model = TraceReplay::new(trace);
        let res = run(
            &mut net,
            &mut model,
            RunMode::ClosedLoop { max_cycles: 300_000 },
            &EnergyModel::default(),
        );
        prop_assert!(res.completed);
        prop_assert_eq!(
            res.stats.events.link_traversals, total_distance,
            "minimal design took a non-minimal path"
        );
    }

    /// Energy accounting is additive: the breakdown parts sum to the total,
    /// and more traffic never costs less energy.
    #[test]
    fn prop_energy_monotone_in_load(seed in any::<u64>()) {
        let cfg = SimConfig {
            width: 4,
            height: 4,
            warmup_cycles: 100,
            measure_cycles: 400,
            drain_cycles: 200,
            seed,
            ..SimConfig::default()
        };
        let lo = dxbar_noc::run_synthetic(Design::DXbarDor, &cfg, Pattern::UniformRandom, 0.05);
        let hi = dxbar_noc::run_synthetic(Design::DXbarDor, &cfg, Pattern::UniformRandom, 0.25);
        prop_assert!(hi.energy.total_pj() > lo.energy.total_pj());
        for r in [&lo, &hi] {
            let sum = r.energy.crossbar_pj + r.energy.link_pj + r.energy.buffer_pj + r.energy.nack_pj;
            prop_assert!((r.energy.total_pj() - sum).abs() < 1e-6);
        }
    }
}

//! End-to-end resilience acceptance: transient soft errors and permanent
//! link faults under CRC + NI retransmission, checked by the full oracle
//! suite. The accounting identity — every unique injected flit is either
//! delivered exactly once or lands in the sanctioned loss count — must
//! hold at quiescence, and no corruption may escape detection.

use dxbar_noc::noc_resilience::{ResiliencePlan, TransientSpec};
use dxbar_noc::{
    run_synthetic_resilient, run_synthetic_resilient_verified, Design, RunResult, SimConfig,
};
use noc_topology::Mesh;
use noc_traffic::patterns::Pattern;

/// Drain long enough for the worst ARQ give-up chain (~3k cycles at the
/// default retransmit config) so loss accounting is exact at quiescence.
fn resilient_cfg() -> SimConfig {
    SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 100,
        measure_cycles: 600,
        drain_cycles: 6_000,
        ..SimConfig::default()
    }
}

fn transient_plan(rate: f64, seed: u64) -> ResiliencePlan {
    ResiliencePlan::none().with_transients(TransientSpec {
        rate,
        drop_fraction: 0.5,
        seed,
    })
}

/// `unique injections == deliveries + sanctioned losses` over the whole run.
fn assert_accounting_identity(design: Design, r: &RunResult) {
    let e = &r.stats.events;
    let unique = e.injections - e.ni_retransmits - e.retransmissions;
    let delivered = e.ejections - e.crc_rejects - e.duplicates_suppressed;
    assert_eq!(
        unique,
        delivered + e.flits_lost,
        "{}: {} unique flits vs {} delivered + {} lost",
        design.name(),
        unique,
        delivered,
        e.flits_lost
    );
}

#[test]
fn every_design_survives_transients_verified() {
    let cfg = resilient_cfg();
    let plan = transient_plan(1e-3, 0xC0FFEE);
    for design in Design::ALL {
        let (result, reach, report) =
            run_synthetic_resilient_verified(design, &cfg, Pattern::UniformRandom, 0.1, &plan)
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
        assert!(reach.is_fully_connected());
        assert!(report.is_clean());
        assert!(
            result.stats.events.transit_corruptions + result.stats.events.transit_losses > 0,
            "{}: the transient process never struck",
            design.name()
        );
        assert!(
            result.crc_rejects + result.ni_retransmits > 0,
            "{}: recovery machinery never engaged",
            design.name()
        );
        assert_accounting_identity(design, &result);
    }
}

#[test]
fn dead_link_with_recovery_is_verified_clean() {
    let cfg = resilient_cfg();
    let mesh = Mesh::new(cfg.width, cfg.height);
    // One dead channel + a mild transient process: the composed plan the
    // resilience_smoke campaign uses.
    let plan = ResiliencePlan::generate(&mesh, 0.0, 1, 5e-4, 50, 100, 7);
    assert!(plan.reachability(&mesh).is_fully_connected());
    for design in [Design::DXbarWf, Design::Buffered8, Design::FlitBless] {
        let (result, reach, report) =
            run_synthetic_resilient_verified(design, &cfg, Pattern::UniformRandom, 0.1, &plan)
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
        assert!(reach.is_fully_connected());
        assert!(report.is_clean());
        assert!(result.accepted_packets > 0, "{}", design.name());
        assert_accounting_identity(design, &result);
    }
}

#[test]
fn partitioned_plan_is_reported_not_hidden() {
    // Hand-build a plan that amputates corner (0,0) of a 4x4 mesh: both of
    // its channels die. The reachability pre-check must name the cut.
    use dxbar_noc::noc_resilience::LinkFault;
    use noc_core::types::{Direction, NodeId};
    let mesh = Mesh::new(4, 4);
    let plan = ResiliencePlan::none().with_link_faults(vec![
        LinkFault {
            node: NodeId(0),
            dir: Direction::East,
            onset: 0,
        },
        LinkFault {
            node: NodeId(0),
            dir: Direction::South,
            onset: 0,
        },
    ]);
    let reach = plan.reachability(&mesh);
    assert_eq!(reach.components, 2);
    assert_eq!(reach.partitioned_pairs.len(), 15);
    assert!(reach
        .partitioned_pairs
        .iter()
        .all(|&(a, b)| a == NodeId(0) || b == NodeId(0)));

    // The facade surfaces the same report alongside the (degraded) run.
    let cfg = resilient_cfg();
    let (result, reach) =
        run_synthetic_resilient(Design::DXbarDor, &cfg, Pattern::UniformRandom, 0.05, &plan);
    assert!(!reach.is_fully_connected());
    // Traffic to/from the cut corner burns its retry budget and is counted.
    assert!(result.lost_flits > 0);
    assert!(
        result.accepted_packets > 0,
        "the rest of the mesh still runs"
    );
}

#[test]
fn degradation_is_monotone_in_fault_rate_for_loss() {
    // Loss and recovery activity must grow with the transient rate; this
    // pins the Poisson process to the knob, not just to the seed.
    let cfg = resilient_cfg();
    let activity = |rate: f64| -> u64 {
        let (r, _) = run_synthetic_resilient(
            Design::DXbarDor,
            &cfg,
            Pattern::UniformRandom,
            0.2,
            &transient_plan(rate, 42),
        );
        r.stats.events.transit_corruptions + r.stats.events.transit_losses
    };
    let low = activity(1e-4);
    let high = activity(5e-3);
    assert!(
        high > 2 * low.max(1),
        "fault activity must scale with the rate: {low} at 1e-4 vs {high} at 5e-3"
    );
}

//! Closed-loop SPLASH-2 workload integration (scaled-down versions of the
//! Fig. 9/10 experiments).

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_power::energy::EnergyModel;
use dxbar_noc::noc_sim::runner::{run, RunMode};
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::splash::{AppParams, SplashApp, SplashTraffic};
use dxbar_noc::{Design, RunResult, SimConfig};

fn tiny_params() -> AppParams {
    AppParams {
        issue_prob: 0.08,
        locality: 0.3,
        l2_miss_rate: 0.1,
        txns_per_core: 30,
        burst_len: 4,
    }
}

fn run_tiny(design: Design) -> RunResult {
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = SplashTraffic::with_params(SplashApp::Fft, tiny_params(), mesh, cfg.seed);
    run(
        &mut net,
        &mut model,
        RunMode::ClosedLoop {
            max_cycles: 2_000_000,
        },
        &EnergyModel::default(),
    )
}

#[test]
fn every_design_completes_the_workload() {
    for design in Design::ALL {
        let r = run_tiny(design);
        assert!(r.completed, "{} did not finish", design.name());
        assert!(r.finish_cycle.unwrap() > 100);
        // 64 cores x 30 transactions, each = request + data (+forwards).
        assert!(
            r.accepted_packets >= 2 * 64 * 30,
            "{}: too few packets",
            design.name()
        );
    }
}

#[test]
fn dxbar_finishes_faster_and_cheaper_than_buffered() {
    // Paper: 15-20 % performance gain and >= 15 % energy saving over the
    // buffered baseline on SPLASH-2 workloads.
    let dxbar = run_tiny(Design::DXbarDor);
    let buffered = run_tiny(Design::Buffered4);
    let t_dx = dxbar.finish_cycle.unwrap() as f64;
    let t_b4 = buffered.finish_cycle.unwrap() as f64;
    assert!(t_dx < 0.95 * t_b4, "DXbar {t_dx} vs Buffered4 {t_b4}");
    assert!(
        dxbar.energy.total_pj() < 0.85 * buffered.energy.total_pj(),
        "DXbar energy {:.0} vs Buffered4 {:.0}",
        dxbar.energy.total_pj(),
        buffered.energy.total_pj()
    );
}

#[test]
fn bufferless_designs_pay_energy_on_the_workload() {
    // Paper: Flit-Bless and SCARAB consume substantially more energy than
    // DXbar on real-application traffic.
    let dxbar = run_tiny(Design::DXbarDor);
    let bless = run_tiny(Design::FlitBless);
    let scarab = run_tiny(Design::Scarab);
    assert!(
        bless.energy.total_pj() > 1.3 * dxbar.energy.total_pj(),
        "BLESS {:.0} vs DXbar {:.0}",
        bless.energy.total_pj(),
        dxbar.energy.total_pj()
    );
    assert!(
        scarab.energy.total_pj() > 1.05 * dxbar.energy.total_pj(),
        "SCARAB {:.0} vs DXbar {:.0}",
        scarab.energy.total_pj(),
        dxbar.energy.total_pj()
    );
    assert!(bless.stats.events.deflections > 0);
    assert!(scarab.stats.events.drops > 0);
}

#[test]
fn all_nine_apps_have_runnable_models() {
    // Smoke-test the per-app parameterizations with an even smaller quota.
    let cfg = SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(4, 4);
    for app in SplashApp::ALL {
        let params = AppParams {
            txns_per_core: 10,
            ..app.params()
        };
        let mut net = Design::DXbarDor.build(&cfg, &FaultPlan::none(&mesh));
        let mut model = SplashTraffic::with_params(app, params, mesh, 3);
        let r = run(
            &mut net,
            &mut model,
            RunMode::ClosedLoop {
                max_cycles: 1_000_000,
            },
            &EnergyModel::default(),
        );
        assert!(r.completed, "{} stalled", app.name());
    }
}

//! Zero-load timing anchors: with a single packet in an otherwise empty
//! network, per-hop latency must equal the pipeline depth the paper gives —
//! 2 cycles/hop for the look-ahead designs (SA/ST + LT), 3 cycles/hop for
//! the 3-stage buffered baseline — and must be exactly linear in distance.

use dxbar_noc::noc_faults::FaultPlan;
use dxbar_noc::noc_power::energy::EnergyModel;
use dxbar_noc::noc_sim::runner::{run, RunMode};
use dxbar_noc::noc_topology::Mesh;
use dxbar_noc::noc_traffic::trace::{Trace, TraceReplay};
use dxbar_noc::{Design, SimConfig};
use noc_core::flit::{FlitKind, PacketDesc, PacketId};
use noc_core::types::NodeId;

/// Deliver one packet from node 0 across `distance` hops along the top row
/// and return its measured latency.
fn one_packet_latency(design: Design, distance: u16) -> u64 {
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: u64::MAX / 4,
        drain_cycles: 0,
        ..SimConfig::default()
    };
    let mesh = Mesh::new(cfg.width, cfg.height);
    let trace = Trace {
        label: format!("single d={distance}"),
        packets: vec![PacketDesc {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(distance),
            len: 1,
            created: 0,
            kind: FlitKind::Synthetic,
        }],
    };
    let mut net = design.build(&cfg, &FaultPlan::none(&mesh));
    let mut model = TraceReplay::new(trace);
    let res = run(
        &mut net,
        &mut model,
        RunMode::ClosedLoop { max_cycles: 10_000 },
        &EnergyModel::default(),
    );
    assert!(res.completed, "{}: single packet stuck", design.name());
    assert_eq!(res.accepted_packets, 1);
    res.stats.packet_latency.max
}

/// Per-hop latency slope between two distances.
fn slope(design: Design) -> u64 {
    let l3 = one_packet_latency(design, 3);
    let l6 = one_packet_latency(design, 6);
    assert_eq!(
        (l6 - l3) % 3,
        0,
        "{}: latency not linear in distance ({l3} -> {l6})",
        design.name()
    );
    (l6 - l3) / 3
}

#[test]
fn lookahead_designs_cost_two_cycles_per_hop() {
    for design in [
        Design::DXbarDor,
        Design::DXbarWf,
        Design::UnifiedDor,
        Design::UnifiedWf,
        Design::FlitBless,
        Design::Scarab,
        Design::Afc,
    ] {
        assert_eq!(
            slope(design),
            2,
            "{}: expected the 2-stage SA/ST + LT pipeline",
            design.name()
        );
    }
}

#[test]
fn buffered_baseline_costs_three_cycles_per_hop() {
    for design in [Design::Buffered4, Design::Buffered8] {
        assert_eq!(
            slope(design),
            3,
            "{}: expected the 3-stage RC, VA+SA/ST, LT pipeline",
            design.name()
        );
    }
}

#[test]
fn zero_load_latency_ordering_matches_pipelines() {
    // At equal distance, the absolute zero-load latency of the buffered
    // baseline exceeds every look-ahead design.
    let d = 6;
    let buffered = one_packet_latency(Design::Buffered4, d);
    for design in [Design::DXbarDor, Design::FlitBless, Design::Scarab] {
        let l = one_packet_latency(design, d);
        assert!(
            buffered > l,
            "{}: {l} should undercut Buffered 4's {buffered}",
            design.name()
        );
    }
}

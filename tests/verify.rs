//! End-to-end runtime verification: every design runs clean under the full
//! oracle suite (flit conservation, exclusivity, route legality, FIFO
//! bounds, fairness, watchdog).
//!
//! The quick tests keep tier-1 fast (4x4 mesh, short windows). The
//! `#[ignore]`d acceptance sweep is the PR's full matrix — 8x8, >= 20k
//! cycles, all designs x {0.1, 0.5} load x {0 %, 50 %} faults — run by the
//! CI verify-smoke job with `--release`.

use dxbar_noc::{run_synthetic_verified, Design, SimConfig};
use noc_faults::FaultPlan;
use noc_topology::Mesh;
use noc_traffic::patterns::Pattern;

fn quick_cfg() -> SimConfig {
    SimConfig {
        width: 4,
        height: 4,
        warmup_cycles: 200,
        measure_cycles: 600,
        drain_cycles: 200,
        ..SimConfig::default()
    }
}

fn verify_point(design: Design, cfg: &SimConfig, load: f64, faults: &FaultPlan) {
    match run_synthetic_verified(design, cfg, Pattern::UniformRandom, load, faults) {
        Ok((result, report)) => {
            assert!(report.is_clean());
            assert!(
                report.checks.cycles >= cfg.total_cycles(),
                "{}: verifier observed {} of {} cycles",
                design.name(),
                report.checks.cycles,
                cfg.total_cycles()
            );
            assert!(
                report.checks.conservation > 0,
                "{}: conservation oracle never engaged",
                design.name()
            );
            assert!(result.accepted_fraction > 0.0, "{}", design.name());
        }
        Err(e) => panic!(
            "{} at load {load} with {} fault(s): {e}",
            design.name(),
            faults.count()
        ),
    }
}

#[test]
fn all_designs_run_clean_low_load() {
    let cfg = quick_cfg();
    let none = FaultPlan::none(&Mesh::new(4, 4));
    for d in Design::ALL {
        verify_point(d, &cfg, 0.1, &none);
    }
}

#[test]
fn crossbar_designs_run_clean_high_load() {
    let cfg = quick_cfg();
    let none = FaultPlan::none(&Mesh::new(4, 4));
    for d in [
        Design::DXbarDor,
        Design::DXbarWf,
        Design::UnifiedDor,
        Design::UnifiedWf,
        Design::Buffered8,
    ] {
        verify_point(d, &cfg, 0.5, &none);
    }
}

#[test]
fn dxbar_runs_clean_through_fault_transitions() {
    let cfg = quick_cfg();
    // Faults manifest inside the warmup window so the run exercises the
    // Dormant -> Undetected -> Detected reconfiguration under the oracles.
    let faults = FaultPlan::generate(&Mesh::new(4, 4), 0.5, 50, 150, 9);
    assert!(faults.count() > 0);
    for d in [Design::DXbarDor, Design::DXbarWf] {
        verify_point(d, &cfg, 0.3, &faults);
    }
}

#[test]
fn verified_run_matches_unverified_result() {
    // The observer must not perturb the simulation: identical statistics
    // with and without the oracle suite attached.
    let cfg = quick_cfg();
    let none = FaultPlan::none(&Mesh::new(4, 4));
    for d in [Design::DXbarDor, Design::UnifiedWf, Design::Buffered4] {
        let plain = dxbar_noc::run_synthetic(d, &cfg, Pattern::MatrixTranspose, 0.4);
        let (verified, _) =
            run_synthetic_verified(d, &cfg, Pattern::MatrixTranspose, 0.4, &none).unwrap();
        assert_eq!(
            plain.accepted_packets,
            verified.accepted_packets,
            "{}",
            d.name()
        );
        assert_eq!(plain.accepted_rate, verified.accepted_rate, "{}", d.name());
        assert_eq!(
            plain.avg_packet_latency,
            verified.avg_packet_latency,
            "{}",
            d.name()
        );
    }
}

/// The PR's acceptance matrix. ~36 verified 8x8 runs; run with
/// `cargo test --release --test verify -- --ignored`.
#[test]
#[ignore = "full 8x8 acceptance sweep; CI verify-smoke runs it with --release"]
fn acceptance_sweep_8x8_all_designs() {
    let cfg = SimConfig {
        width: 8,
        height: 8,
        warmup_cycles: 4_000,
        measure_cycles: 12_000,
        drain_cycles: 4_000,
        ..SimConfig::default()
    };
    assert!(cfg.total_cycles() >= 20_000);
    let mesh = Mesh::new(8, 8);
    let none = FaultPlan::none(&mesh);
    let half = FaultPlan::generate(&mesh, 0.5, 1_000, 3_000, 13);
    for d in Design::ALL {
        for load in [0.1, 0.5] {
            verify_point(d, &cfg, load, &none);
            if d.supports_faults() {
                verify_point(d, &cfg, load, &half);
            }
        }
    }
}
